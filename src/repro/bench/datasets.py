"""Dataset registry: stand-ins for the road networks of Table 1.

The paper evaluates on six real road networks (Oldenburg, Germany, Argentina,
Denmark, India, North America).  Those datasets cannot be redistributed, so
the registry generates seeded synthetic networks with matching sparsity
(edge/node ratio) via :func:`repro.network.random_planar_network`.

Two profiles are provided:

* ``quick`` (default) — scaled-down node counts and a proportionally smaller
  page size, so that the number of regions, the region-set cardinalities and
  all scheme trade-offs keep the same *structure* as the paper's setup while
  pre-computation stays tractable in pure Python.
* ``paper`` — the full Table 1 node counts and the 4 KByte page of Table 2
  (hours of pre-computation in pure Python; provided for completeness).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..costmodel import SystemSpec
from ..network import RoadNetwork, random_planar_network

#: Page size used by the ``quick`` profile (Table 2 uses 4096).
QUICK_PAGE_SIZE = 512
#: Page size used by the ``paper`` profile (Table 2).
PAPER_PAGE_SIZE = 4096


@dataclass(frozen=True)
class DatasetSpec:
    """One named road network of Table 1."""

    name: str
    label: str
    paper_nodes: int
    paper_edges: int
    quick_nodes: int
    seed: int

    @property
    def edge_factor(self) -> float:
        """Directed edges per node in the paper's dataset (≈ undirected factor)."""
        return self.paper_edges / self.paper_nodes

    def nodes_for(self, profile: str) -> int:
        if profile == "paper":
            return self.paper_nodes
        if profile == "quick":
            return self.quick_nodes
        raise ValueError(f"unknown profile {profile!r} (use 'quick' or 'paper')")


#: Table 1 of the paper, with the quick-profile sizes used by the benchmarks.
DATASETS: Dict[str, DatasetSpec] = {
    "oldenburg": DatasetSpec("oldenburg", "Old.", 6_105, 7_029, 700, seed=11),
    "germany": DatasetSpec("germany", "Ger.", 28_867, 30_429, 1_100, seed=12),
    "argentina": DatasetSpec("argentina", "Arg.", 85_287, 88_357, 1_600, seed=13),
    "denmark": DatasetSpec("denmark", "Den.", 136_377, 143_612, 2_100, seed=14),
    "india": DatasetSpec("india", "Ind.", 149_566, 155_483, 2_300, seed=15),
    "north_america": DatasetSpec("north_america", "Nor.", 175_813, 179_179, 2_600, seed=16),
}

#: The three smaller networks (Figures 7–9) and the three larger ones (Figures 10–12).
SMALL_DATASETS: List[str] = ["oldenburg", "germany", "argentina"]
LARGE_DATASETS: List[str] = ["denmark", "india", "north_america"]


def dataset_spec(name: str) -> DatasetSpec:
    try:
        return DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(sorted(DATASETS))}"
        ) from None


def load_dataset(name: str, profile: str = "quick") -> RoadNetwork:
    """Generate the synthetic stand-in for a Table 1 network."""
    spec = dataset_spec(name)
    num_nodes = spec.nodes_for(profile)
    # ``random_planar_network`` counts undirected edges; the Table 1 ratio is
    # per directed edge pair in the original data, so it carries over directly.
    return random_planar_network(
        num_nodes,
        edge_factor=spec.edge_factor,
        seed=spec.seed,
    )


def system_spec_for(profile: str = "quick") -> SystemSpec:
    """The system specification matching the chosen profile."""
    if profile == "paper":
        return SystemSpec(page_size=PAPER_PAGE_SIZE)
    if profile == "quick":
        return SystemSpec(page_size=QUICK_PAGE_SIZE)
    raise ValueError(f"unknown profile {profile!r} (use 'quick' or 'paper')")
