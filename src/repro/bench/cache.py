"""Build cache shared across experiments.

Several experiments need the same expensive artifacts — generated networks,
partitionings, border-node indexes, border-to-border pre-computations and
fully built schemes.  This cache memoises them (keyed by dataset, profile and
build parameters) so that, e.g., Table 3 and Figures 7–9 share one CI build
per dataset instead of rebuilding it for every benchmark.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..costmodel import SystemSpec
from ..network import RoadNetwork
from ..partition import (
    BorderNodeIndex,
    Partitioning,
    compute_border_nodes,
    packed_kdtree_partition,
    plain_kdtree_partition,
)
from ..precompute import BorderProducts, compute_border_products
from .datasets import load_dataset, system_spec_for


class BuildCache:
    """Memoises datasets, partitionings, pre-computations and scheme builds."""

    def __init__(self, profile: str = "quick") -> None:
        self.profile = profile
        self._networks: Dict[str, RoadNetwork] = {}
        self._partitionings: Dict[Tuple, Partitioning] = {}
        self._borders: Dict[Tuple, BorderNodeIndex] = {}
        self._products: Dict[Tuple, BorderProducts] = {}
        self._schemes: Dict[Tuple, object] = {}

    # ------------------------------------------------------------------ #
    # primitive artifacts
    # ------------------------------------------------------------------ #
    @property
    def spec(self) -> SystemSpec:
        return system_spec_for(self.profile)

    def network(self, dataset: str) -> RoadNetwork:
        if dataset not in self._networks:
            self._networks[dataset] = load_dataset(dataset, self.profile)
        return self._networks[dataset]

    def partitioning(
        self, dataset: str, packed: bool = True, capacity: Optional[int] = None
    ) -> Partitioning:
        spec = self.spec
        capacity = capacity if capacity is not None else spec.page_size - 8
        key = (dataset, packed, capacity)
        if key not in self._partitionings:
            partition_fn = packed_kdtree_partition if packed else plain_kdtree_partition
            self._partitionings[key] = partition_fn(self.network(dataset), capacity)
        return self._partitionings[key]

    def border_index(
        self, dataset: str, packed: bool = True, capacity: Optional[int] = None
    ) -> BorderNodeIndex:
        spec = self.spec
        capacity = capacity if capacity is not None else spec.page_size - 8
        key = (dataset, packed, capacity)
        if key not in self._borders:
            self._borders[key] = compute_border_nodes(
                self.network(dataset), self.partitioning(dataset, packed, capacity)
            )
        return self._borders[key]

    def border_products(
        self,
        dataset: str,
        packed: bool = True,
        capacity: Optional[int] = None,
        want_subgraphs: bool = False,
    ) -> BorderProducts:
        spec = self.spec
        capacity = capacity if capacity is not None else spec.page_size - 8
        key = (dataset, packed, capacity, want_subgraphs)
        if key not in self._products:
            self._products[key] = compute_border_products(
                self.network(dataset),
                self.partitioning(dataset, packed, capacity),
                self.border_index(dataset, packed, capacity),
                want_region_sets=True,
                want_subgraphs=want_subgraphs,
            )
        return self._products[key]

    # ------------------------------------------------------------------ #
    # scheme builds
    # ------------------------------------------------------------------ #
    def scheme(self, key: Tuple, builder) -> object:
        """Memoise an arbitrary scheme build under ``key``."""
        if key not in self._schemes:
            self._schemes[key] = builder()
        return self._schemes[key]

    def clear(self) -> None:
        self._networks.clear()
        self._partitionings.clear()
        self._borders.clear()
        self._products.clear()
        self._schemes.clear()


_GLOBAL_CACHE: Optional[BuildCache] = None


def get_cache(profile: str = "quick") -> BuildCache:
    """The process-wide cache (one per profile; switching profiles resets it)."""
    global _GLOBAL_CACHE
    if _GLOBAL_CACHE is None or _GLOBAL_CACHE.profile != profile:
        _GLOBAL_CACHE = BuildCache(profile)
    return _GLOBAL_CACHE
