"""Pre-computation: border-to-border products, landmark vectors and arc flags."""

from .arcflags import ArcFlagIndex, build_arc_flags
from .border_products import BorderProducts, compute_border_products
from .landmarks import LandmarkIndex, build_landmark_index, select_anchors
from .sparsify import (
    ApproximateProducts,
    SparsificationStats,
    compute_approximate_passage_subgraphs,
)

__all__ = [
    "ApproximateProducts",
    "ArcFlagIndex",
    "BorderProducts",
    "LandmarkIndex",
    "SparsificationStats",
    "build_arc_flags",
    "build_landmark_index",
    "compute_approximate_passage_subgraphs",
    "compute_border_products",
    "select_anchors",
]
