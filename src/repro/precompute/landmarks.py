"""Landmark (ALT) pre-computation for the LM baseline (Section 4).

A small number of anchor nodes is selected; for every node the shortest-path
costs to all anchors are pre-computed and stored with the node (the *landmark
vector*).  During query processing an A* search uses the triangle-inequality
lower bound derived from these vectors to focus the expansion towards the
destination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..exceptions import GraphError
from ..network import NodeId, RoadNetwork, dijkstra_tree
from ..network.generators import _default_rng


@dataclass
class LandmarkIndex:
    """Landmark vectors for every node of the network."""

    anchors: Tuple[NodeId, ...]
    #: ``vectors[node][k]`` is the shortest-path cost from ``anchors[k]`` to ``node``.
    vectors: Dict[NodeId, Tuple[float, ...]]

    @property
    def num_anchors(self) -> int:
        return len(self.anchors)

    def vector(self, node_id: NodeId) -> Tuple[float, ...]:
        return self.vectors[node_id]

    def lower_bound(self, node_id: NodeId, target: NodeId) -> float:
        """ALT lower bound on the cost from ``node_id`` to ``target``."""
        node_vector = self.vectors[node_id]
        target_vector = self.vectors[target]
        best = 0.0
        for node_cost, target_cost in zip(node_vector, target_vector):
            bound = abs(target_cost - node_cost)
            if bound > best:
                best = bound
        return best

    def heuristic_for(self, target: NodeId):
        """A heuristic callable suitable for :func:`repro.network.astar_search`."""
        target_vector = self.vectors[target]

        def heuristic(node_id: NodeId) -> float:
            node_vector = self.vectors[node_id]
            best = 0.0
            for node_cost, target_cost in zip(node_vector, target_vector):
                bound = abs(target_cost - node_cost)
                if bound > best:
                    best = bound
            return best

        return heuristic


def select_anchors(network: RoadNetwork, count: int, seed: int = 0) -> List[NodeId]:
    """Select anchors with the farthest-point heuristic (spread over the plane)."""
    if count < 1:
        raise GraphError("at least one anchor is required")
    node_ids = list(network.node_ids())
    if count > len(node_ids):
        raise GraphError("more anchors requested than nodes available")
    # numpy's generator when numpy is installed (anchor choice unchanged),
    # the pure-Python stand-in otherwise — see repro.network.generators
    rng = _default_rng(seed)
    coordinates = {
        node_id: (network.node(node_id).x, network.node(node_id).y) for node_id in node_ids
    }
    first = node_ids[int(rng.integers(0, len(node_ids)))]
    anchors = [first]
    while len(anchors) < count:
        best_node = None
        best_distance = -1.0
        for node_id in node_ids:
            x, y = coordinates[node_id]
            nearest = min(
                (x - coordinates[a][0]) ** 2 + (y - coordinates[a][1]) ** 2 for a in anchors
            )
            if nearest > best_distance:
                best_distance = nearest
                best_node = node_id
        anchors.append(best_node)
    return anchors


def build_landmark_index(
    network: RoadNetwork, num_anchors: int, seed: int = 0
) -> LandmarkIndex:
    """Pre-compute landmark vectors for all nodes.

    The networks produced by the generators are symmetric, so a forward
    Dijkstra from each anchor yields both to-anchor and from-anchor costs;
    unreachable nodes get an infinite entry (never the case for connected
    networks).
    """
    anchors = select_anchors(network, num_anchors, seed)
    per_anchor_costs: List[Dict[NodeId, float]] = []
    for anchor in anchors:
        tree = dijkstra_tree(network, anchor)
        per_anchor_costs.append(tree.distances)
    vectors: Dict[NodeId, Tuple[float, ...]] = {}
    for node_id in network.node_ids():
        vectors[node_id] = tuple(
            costs.get(node_id, float("inf")) for costs in per_anchor_costs
        )
    return LandmarkIndex(tuple(anchors), vectors)
