"""Border-to-border shortest-path pre-computation (Sections 5.2 and 6).

For every ordered pair of regions ``(i, j)`` the schemes need one of two
pre-computed products:

* ``S_ij`` — the set of *intermediate regions* crossed by at least one
  shortest path from a border node of ``R_i`` to a border node of ``R_j``
  (used by CI and by the region-set part of HY), and
* ``G_ij`` — the exact set of original directed edges appearing in at least
  one such shortest path (the *passage subgraph* used by PI, PI* and the
  subgraph part of HY).

Both are derived from the same single-source shortest-path trees rooted at
border nodes of the augmented network, so this module computes them in one
pass.  For every source border node one Dijkstra tree is built; the union of
paths towards the border nodes of each destination region is then extracted
by walking parent pointers with memoisation, which costs time proportional to
the size of the union rather than to the sum of path lengths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from ..network import NodeId, RoadNetwork, dijkstra_tree
from ..partition import BorderNodeIndex, Partitioning, RegionId

RegionPair = Tuple[RegionId, RegionId]
DirectedEdge = Tuple[NodeId, NodeId]


@dataclass
class BorderProducts:
    """Pre-computation output: region sets and/or passage subgraphs."""

    #: ``S_ij`` — intermediate regions, excluding ``i`` and ``j`` themselves.
    region_sets: Dict[RegionPair, FrozenSet[RegionId]] = field(default_factory=dict)
    #: ``G_ij`` — original directed edges on border-to-border shortest paths.
    passage_subgraphs: Dict[RegionPair, FrozenSet[DirectedEdge]] = field(default_factory=dict)

    def max_region_set_size(self) -> int:
        """The value ``m`` of Section 5.4: the largest ``|S_ij|``."""
        if not self.region_sets:
            return 0
        return max(len(regions) for regions in self.region_sets.values())

    def region_set(self, i: RegionId, j: RegionId) -> FrozenSet[RegionId]:
        return self.region_sets.get((i, j), frozenset())

    def passage_subgraph(self, i: RegionId, j: RegionId) -> FrozenSet[DirectedEdge]:
        return self.passage_subgraphs.get((i, j), frozenset())


def compute_border_products(
    network: RoadNetwork,
    partitioning: Partitioning,
    border_index: BorderNodeIndex,
    want_region_sets: bool = True,
    want_subgraphs: bool = False,
    subgraph_pairs: Optional[Iterable[RegionPair]] = None,
) -> BorderProducts:
    """Compute ``S_ij`` and/or ``G_ij`` for all ordered region pairs.

    ``subgraph_pairs`` optionally restricts the pairs for which passage
    subgraphs are materialised (HY only needs them for the region sets it
    replaces); ``None`` means all pairs.
    """
    products = BorderProducts()
    if not want_region_sets and not want_subgraphs:
        return products

    restricted: Optional[Set[RegionPair]] = None
    if want_subgraphs and subgraph_pairs is not None:
        restricted = set(subgraph_pairs)

    region_sets: Dict[RegionPair, Set[RegionId]] = {}
    subgraphs: Dict[RegionPair, Set[DirectedEdge]] = {}
    augmented = border_index.augmented
    borders_by_region = border_index.borders_of_region

    for source_border in border_index.border_nodes():
        tree = dijkstra_tree(augmented, source_border)
        source_regions = border_index.regions_of_border[source_border]
        for destination_region, targets in borders_by_region.items():
            wants_edges_here = want_subgraphs and (
                restricted is None
                or any((i, destination_region) in restricted for i in source_regions)
            )
            if not want_region_sets and not wants_edges_here:
                continue
            regions_on_paths, edges_on_paths = _collect_paths(
                network,
                partitioning,
                border_index,
                tree,
                source_border,
                targets,
                collect_edges=wants_edges_here,
            )
            for source_region in source_regions:
                key = (source_region, destination_region)
                if want_region_sets:
                    bucket = region_sets.setdefault(key, set())
                    bucket.update(
                        region
                        for region in regions_on_paths
                        if region != source_region and region != destination_region
                    )
                if wants_edges_here and (restricted is None or key in restricted):
                    subgraphs.setdefault(key, set()).update(edges_on_paths)

    if want_region_sets:
        for region_i in partitioning.region_ids():
            for region_j in partitioning.region_ids():
                key = (region_i, region_j)
                products.region_sets[key] = frozenset(region_sets.get(key, set()))
    if want_subgraphs:
        keys = restricted if restricted is not None else [
            (i, j) for i in partitioning.region_ids() for j in partitioning.region_ids()
        ]
        for key in keys:
            products.passage_subgraphs[key] = frozenset(subgraphs.get(key, set()))
    return products


def _collect_paths(
    network: RoadNetwork,
    partitioning: Partitioning,
    border_index: BorderNodeIndex,
    tree,
    source_border: NodeId,
    targets,
    collect_edges: bool,
) -> Tuple[Set[RegionId], Set[DirectedEdge]]:
    """Union of regions/edges over the tree paths from the source border to ``targets``."""
    visited: Set[NodeId] = set()
    regions_on_paths: Set[RegionId] = set()
    edges_on_paths: Set[DirectedEdge] = set()

    for target in targets:
        if target == source_border or not tree.has_path_to(target):
            continue
        node = target
        while node not in visited:
            visited.add(node)
            if not border_index.is_border(node):
                regions_on_paths.add(partitioning.region_of_node(node))
            parent = tree.parents.get(node)
            if parent is None:
                break
            if collect_edges:
                edge = _original_directed_edge(network, border_index, parent, node)
                if edge is not None:
                    edges_on_paths.add(edge)
            node = parent

    return regions_on_paths, edges_on_paths


def _original_directed_edge(
    network: RoadNetwork,
    border_index: BorderNodeIndex,
    parent: NodeId,
    child: NodeId,
) -> Optional[DirectedEdge]:
    """Map one augmented-graph step ``parent -> child`` to an original directed edge."""
    parent_is_border = border_index.is_border(parent)
    child_is_border = border_index.is_border(child)
    if not parent_is_border and not child_is_border:
        return (parent, child)
    if parent_is_border and not child_is_border:
        endpoint_a, endpoint_b = border_index.original_edge_of_border[parent]
        other = endpoint_a if child == endpoint_b else endpoint_b
        return (other, child) if network.has_edge(other, child) else None
    if child_is_border and not parent_is_border:
        endpoint_a, endpoint_b = border_index.original_edge_of_border[child]
        other = endpoint_b if parent == endpoint_a else endpoint_a
        return (parent, other) if network.has_edge(parent, other) else None
    # two consecutive border nodes cannot be adjacent in the augmented network
    return None
