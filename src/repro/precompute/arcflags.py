"""Arc-flag pre-computation for the AF baseline (Section 4).

For every directed edge a bit vector with one bit per region is kept; the bit
for region ``j`` is set when the edge lies on some shortest path towards a
node of region ``j``.  Query processing for a destination in region ``j`` may
then ignore every edge whose ``j`` bit is unset.

The flags are computed exactly: an edge ``(u, v)`` is on a shortest path into
region ``j`` iff either ``v`` itself lies in ``j`` or
``w(u, v) + dist(v, b) = dist(u, b)`` for some border node ``b`` of ``j``
(distances measured in the reversed augmented network).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..network import NodeId, RoadNetwork, dijkstra_tree
from ..partition import BorderNodeIndex, Partitioning, RegionId

DirectedEdge = Tuple[NodeId, NodeId]


@dataclass
class ArcFlagIndex:
    """Per-edge region bit vectors."""

    num_regions: int
    #: ``flags[(u, v)]`` is a set of region ids for which the edge may be useful.
    flags: Dict[DirectedEdge, frozenset]

    def is_useful(self, source: NodeId, target: NodeId, destination_region: RegionId) -> bool:
        flagged = self.flags.get((source, target))
        if flagged is None:
            return False
        return destination_region in flagged

    def bit_vector(self, source: NodeId, target: NodeId) -> bytes:
        """The packed bit vector stored with the edge in the region data file."""
        flagged = self.flags.get((source, target), frozenset())
        num_bytes = (self.num_regions + 7) // 8
        bits = bytearray(num_bytes)
        for region in flagged:
            bits[region // 8] |= 1 << (region % 8)
        return bytes(bits)

    def flag_fraction(self) -> float:
        """Average fraction of set bits per edge (a measure of pruning power)."""
        if not self.flags:
            return 0.0
        total = sum(len(regions) for regions in self.flags.values())
        return total / (len(self.flags) * self.num_regions)


def build_arc_flags(
    network: RoadNetwork,
    partitioning: Partitioning,
    border_index: BorderNodeIndex,
) -> ArcFlagIndex:
    """Compute exact arc flags using backward searches from region border nodes."""
    reversed_augmented = border_index.augmented.reversed()
    flags: Dict[DirectedEdge, set] = {
        (edge.source, edge.target): set() for edge in network.edges()
    }

    # Rule 1: an edge whose head lies inside region j is always useful for j.
    for edge_key in flags:
        flags[edge_key].add(partitioning.region_of_node(edge_key[1]))

    # Rule 2: edges on shortest paths towards a border node of region j.
    epsilon = 1e-9
    for region_id, border_nodes in border_index.borders_of_region.items():
        for border in border_nodes:
            # distances measured towards the border node
            tree = dijkstra_tree(reversed_augmented, border)
            to_border = tree.distances
            for (source, target), regions in flags.items():
                if region_id in regions:
                    continue
                source_cost = to_border.get(source)
                target_cost = to_border.get(target)
                if source_cost is None or target_cost is None:
                    continue
                weight = network.edge_weight(source, target)
                if abs(weight + target_cost - source_cost) <= epsilon * max(1.0, source_cost):
                    regions.add(region_id)

    return ArcFlagIndex(
        partitioning.num_regions,
        {edge: frozenset(regions) for edge, regions in flags.items()},
    )
