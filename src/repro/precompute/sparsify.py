"""Approximate passage subgraphs with bounded cost deviation.

The paper's conclusion names, as future work, "the development of approximate
schemes with bounded cost deviation from the actual shortest path".  This
module implements the pre-computation side of such a scheme.

For every ordered region pair ``(i, j)`` the exact Passage Index materialises
the union of all border-to-border shortest paths.  The approximate variant
materialises only a *subset* of those paths, chosen greedily so that for every
border pair ``(v, v')`` the selected subset still contains some ``v → v'``
path of cost at most ``(1 + ε) · d(v, v')``.  Because any client query from a
source in ``R_i`` to a destination in ``R_j`` crosses exactly one border pair,
the same ``(1 + ε)`` bound carries over to the full query: the subgraph the
client retrieves always contains a path whose cost is within ``(1 + ε)`` of
the true shortest path (Section 5.2's border-node argument, applied to the
detour instead of the exact border path).

Setting ``ε = 0`` degenerates to deduplicating border pairs whose exact paths
are already contained in previously selected ones, which loses nothing and
already shrinks the index; larger ``ε`` trades result quality for space.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..exceptions import PartitionError
from ..network import NodeId, RoadNetwork, dijkstra_tree
from ..partition import BorderNodeIndex, Partitioning, RegionId
from .border_products import BorderProducts, _original_directed_edge

RegionPair = Tuple[RegionId, RegionId]
DirectedEdge = Tuple[NodeId, NodeId]
#: One border-to-border candidate: (cost, source border, target border, augmented edges).
_Candidate = Tuple[float, NodeId, NodeId, Tuple[Tuple[NodeId, NodeId, float], ...]]


@dataclass
class SparsificationStats:
    """Aggregate statistics of one approximate pre-computation run."""

    epsilon: float
    pairs_total: int = 0
    pairs_selected: int = 0
    pairs_skipped: int = 0
    exact_edges: int = 0
    kept_edges: int = 0

    @property
    def selection_ratio(self) -> float:
        """Fraction of border pairs whose exact path had to be materialised."""
        if self.pairs_total == 0:
            return 0.0
        return self.pairs_selected / self.pairs_total

    @property
    def edge_ratio(self) -> float:
        """Kept edges as a fraction of the exact passage-subgraph edges."""
        if self.exact_edges == 0:
            return 0.0
        return self.kept_edges / self.exact_edges


@dataclass
class ApproximateProducts:
    """Approximate passage subgraphs plus the deviation bound they honour."""

    epsilon: float
    passage_subgraphs: Dict[RegionPair, FrozenSet[DirectedEdge]] = field(default_factory=dict)
    stats: SparsificationStats = None  # type: ignore[assignment]

    @property
    def deviation_bound(self) -> float:
        """Worst-case ratio of returned path cost over the true shortest-path cost."""
        return 1.0 + self.epsilon

    def passage_subgraph(self, i: RegionId, j: RegionId) -> FrozenSet[DirectedEdge]:
        return self.passage_subgraphs.get((i, j), frozenset())

    def as_border_products(self) -> BorderProducts:
        """Repackage as :class:`BorderProducts` so the PI builders accept it directly."""
        return BorderProducts(region_sets={}, passage_subgraphs=dict(self.passage_subgraphs))


def _bounded_reachable(
    adjacency: Dict[NodeId, List[Tuple[NodeId, float]]],
    source: NodeId,
    target: NodeId,
    budget: float,
) -> bool:
    """True when ``adjacency`` contains a ``source → target`` path of cost ≤ ``budget``."""
    if source == target:
        return True
    if source not in adjacency:
        return False
    distances: Dict[NodeId, float] = {source: 0.0}
    heap: List[Tuple[float, NodeId]] = [(0.0, source)]
    settled: Set[NodeId] = set()
    while heap:
        dist, node = heapq.heappop(heap)
        if node in settled:
            continue
        if dist > budget:
            return False
        if node == target:
            return True
        settled.add(node)
        for neighbor, weight in adjacency.get(node, ()):
            candidate = dist + weight
            if candidate <= budget and candidate < distances.get(neighbor, math.inf):
                distances[neighbor] = candidate
                heapq.heappush(heap, (candidate, neighbor))
    return False


def _candidate_paths(
    augmented: RoadNetwork,
    border_index: BorderNodeIndex,
) -> Dict[RegionPair, List[_Candidate]]:
    """Exact border-to-border paths grouped by ordered region pair."""
    candidates: Dict[RegionPair, List[_Candidate]] = {}
    all_borders = border_index.border_nodes()
    for source_border in all_borders:
        tree = dijkstra_tree(augmented, source_border, targets=all_borders)
        source_regions = border_index.regions_of_border[source_border]
        for destination_region, targets in border_index.borders_of_region.items():
            for target_border in targets:
                if target_border == source_border or not tree.has_path_to(target_border):
                    continue
                cost = tree.distance_to(target_border)
                edges: List[Tuple[NodeId, NodeId, float]] = []
                node = target_border
                while node != source_border:
                    parent = tree.parents[node]
                    edges.append(
                        (parent, node, tree.distances[node] - tree.distances[parent])
                    )
                    node = parent
                edges.reverse()
                candidate: _Candidate = (cost, source_border, target_border, tuple(edges))
                for source_region in source_regions:
                    key = (source_region, destination_region)
                    candidates.setdefault(key, []).append(candidate)
    return candidates


def compute_approximate_passage_subgraphs(
    network: RoadNetwork,
    partitioning: Partitioning,
    border_index: BorderNodeIndex,
    epsilon: float,
) -> ApproximateProducts:
    """Compute ``(1 + ε)``-approximate passage subgraphs for all region pairs.

    For each ordered region pair, border-to-border paths are considered in
    descending cost order; a path is materialised only when the already
    selected paths do not contain a detour within the ``(1 + ε)`` budget.
    """
    if epsilon < 0:
        raise PartitionError(f"epsilon must be non-negative, got {epsilon}")

    stats = SparsificationStats(epsilon=epsilon)
    products = ApproximateProducts(epsilon=epsilon, stats=stats)
    candidates = _candidate_paths(border_index.augmented, border_index)

    for region_i in partitioning.region_ids():
        for region_j in partitioning.region_ids():
            key = (region_i, region_j)
            pair_candidates = candidates.get(key, [])
            kept_edges: Set[DirectedEdge] = set()
            kept_augmented: Set[Tuple[NodeId, NodeId]] = set()
            adjacency: Dict[NodeId, List[Tuple[NodeId, float]]] = {}
            exact_edges: Set[DirectedEdge] = set()

            for cost, source_border, target_border, edges in sorted(
                pair_candidates, key=lambda item: -item[0]
            ):
                stats.pairs_total += 1
                for parent, child, _ in edges:
                    original = _original_directed_edge(network, border_index, parent, child)
                    if original is not None:
                        exact_edges.add(original)
                budget = (1.0 + epsilon) * cost
                if _bounded_reachable(adjacency, source_border, target_border, budget):
                    stats.pairs_skipped += 1
                    continue
                stats.pairs_selected += 1
                for parent, child, weight in edges:
                    if (parent, child) not in kept_augmented:
                        kept_augmented.add((parent, child))
                        adjacency.setdefault(parent, []).append((child, weight))
                    original = _original_directed_edge(network, border_index, parent, child)
                    if original is not None:
                        kept_edges.add(original)

            products.passage_subgraphs[key] = frozenset(kept_edges)
            stats.kept_edges += len(kept_edges)
            stats.exact_edges += len(exact_edges)

    return products
