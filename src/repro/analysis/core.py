"""Core machinery of the invariant-aware static analysis pass.

The repository promises three load-bearing invariants (see ``INVARIANTS.md``
at the repo root): no query-plaintext leakage into server/operator-visible
channels (I1), bit-identical results across every execution configuration
(I2), and a fully optional numpy/scipy dependency (I3).  The property-test
suite enforces them dynamically; this package enforces them *statically*, so
a violating code path fails review even when no test happens to execute it.

This module is rule-agnostic: it provides the :class:`Finding` record, the
:class:`Rule` base class and registry, inline ``# repro: allow[rule-id]``
suppressions, the committed-baseline mechanism for grandfathered findings,
the file walker and the :func:`run_analysis` driver.  The project-specific
rules live in :mod:`repro.analysis.rules`; the command line lives in
:mod:`repro.analysis.cli` (``python -m repro.analysis``).
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Type

__all__ = [
    "Finding",
    "ParsedModule",
    "Rule",
    "all_rules",
    "baseline_fingerprints",
    "iter_python_files",
    "load_baseline",
    "parse_module",
    "register",
    "run_analysis",
    "suppressed_rule_ids",
    "write_baseline",
]

#: Inline suppression syntax: ``# repro: allow[rule-id]`` (comma-separated ids
#: or ``*``), on the offending line or the line directly above it.
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9*,\- ]+)\]")

#: Directory names the file walker never descends into.
_SKIP_DIRS = {".git", "__pycache__", ".mypy_cache", ".pytest_cache", "results"}


@dataclass(frozen=True)
class Finding:
    """One rule violation, addressable as ``path:line`` and by fingerprint."""

    rule_id: str
    path: str  #: posix path relative to the analysis root
    line: int  #: 1-based line of the offending node
    message: str
    hint: str = ""
    source_line: str = ""  #: stripped text of the offending line

    @property
    def fingerprint(self) -> str:
        """A line-number-independent identity for baseline matching.

        Keyed on (rule, file, offending source text) so findings survive
        unrelated edits above them without baseline churn; moving or editing
        the offending line itself invalidates the grandfathering, which is
        the intended behaviour.
        """
        digest = hashlib.sha256(
            "\x1f".join((self.rule_id, self.path, self.source_line)).encode("utf-8")
        )
        return digest.hexdigest()[:16]

    def format_text(self) -> str:
        text = f"{self.path}:{self.line}: [{self.rule_id}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "hint": self.hint,
            "fingerprint": self.fingerprint,
        }


@dataclass
class ParsedModule:
    """One source file, parsed once and shared by every rule."""

    path: Path  #: absolute path on disk
    rel_path: str  #: posix path relative to the analysis root
    tree: ast.Module
    lines: List[str]  #: raw source lines (1-based via ``line_text``)

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(
        self, rule: "Rule", node: ast.AST, message: str, hint: Optional[str] = None
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        return Finding(
            rule_id=rule.id,
            path=self.rel_path,
            line=line,
            message=message,
            hint=rule.hint if hint is None else hint,
            source_line=self.line_text(line),
        )


class Rule:
    """Base class for one lint rule.

    Subclasses set ``id`` (kebab-case, what ``# repro: allow[...]`` names),
    ``family`` (the invariant family, for ``--list-rules`` grouping),
    ``description`` and ``hint`` (should cite the ``INVARIANTS.md`` anchor),
    restrict themselves via :meth:`applies_to` and emit findings from
    :meth:`check`.  Rules are stateless; one shared instance runs everywhere.
    """

    id: str = ""
    family: str = ""
    description: str = ""
    hint: str = ""

    def applies_to(self, rel_path: str) -> bool:
        return True

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding one instance of the rule to the registry."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> List[Rule]:
    """Every registered rule, importing the bundled rule modules on demand."""
    from . import rules as _rules  # noqa: F401  (import populates the registry)

    return [
        _REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)
    ]


# ---------------------------------------------------------------------- #
# walking and parsing
# ---------------------------------------------------------------------- #
def iter_python_files(roots: Sequence[Path]) -> Iterator[Path]:
    """Every ``*.py`` file under the given files/directories, sorted."""
    seen: Set[Path] = set()
    for root in roots:
        root = Path(root)
        if root.is_file():
            candidates: Iterable[Path] = [root] if root.suffix == ".py" else []
        else:
            candidates = sorted(root.rglob("*.py"))
        for path in candidates:
            if any(part in _SKIP_DIRS for part in path.parts):
                continue
            resolved = path.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield path


def parse_module(path: Path, root: Path) -> ParsedModule:
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    try:
        rel = path.resolve().relative_to(Path(root).resolve()).as_posix()
    except ValueError:
        rel = path.as_posix()
    return ParsedModule(path=path, rel_path=rel, tree=tree, lines=source.splitlines())


# ---------------------------------------------------------------------- #
# suppressions
# ---------------------------------------------------------------------- #
def suppressed_rule_ids(module: ParsedModule, line: int) -> Set[str]:
    """Rule ids allowed at ``line`` via inline ``# repro: allow[...]``.

    The marker counts on the offending line itself or on the line directly
    above it (a comment-only line), mirroring ``noqa``-style conventions.
    """
    ids: Set[str] = set()
    for candidate in (line, line - 1):
        match = _ALLOW_RE.search(module.line_text(candidate))
        if match:
            ids.update(part.strip() for part in match.group(1).split(","))
    return ids


def _is_suppressed(module: ParsedModule, finding: Finding) -> bool:
    allowed = suppressed_rule_ids(module, finding.line)
    return bool(allowed) and ("*" in allowed or finding.rule_id in allowed)


# ---------------------------------------------------------------------- #
# baseline (grandfathered findings)
# ---------------------------------------------------------------------- #
def load_baseline(path: Path) -> Dict[str, object]:
    """The committed baseline document (``{"version": 1, "findings": []}``)."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(document, dict) or "findings" not in document:
        raise ValueError(f"{path} is not a repro-lint baseline file")
    return document


def baseline_fingerprints(document: Mapping[str, object]) -> Set[str]:
    entries = document.get("findings", [])
    fingerprints: Set[str] = set()
    if isinstance(entries, list):
        for entry in entries:
            if isinstance(entry, dict) and "fingerprint" in entry:
                fingerprints.add(str(entry["fingerprint"]))
    return fingerprints


def write_baseline(path: Path, findings: Sequence[Finding], note: str = "") -> None:
    """Write every finding as a grandfathered baseline entry.

    Each entry carries a ``note`` field; the convention is a tracking note
    saying why the finding is deferred and what would retire it.
    """
    document = {
        "version": 1,
        "findings": [
            {
                "rule": finding.rule_id,
                "path": finding.path,
                "fingerprint": finding.fingerprint,
                "note": note or "grandfathered; see INVARIANTS.md",
            }
            for finding in findings
        ],
    }
    Path(path).write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")


# ---------------------------------------------------------------------- #
# the driver
# ---------------------------------------------------------------------- #
@dataclass
class AnalysisResult:
    """Everything one analysis run produced."""

    findings: List[Finding] = field(default_factory=list)
    #: findings silenced by an inline allow, for ``--show-suppressed``
    suppressed: List[Finding] = field(default_factory=list)
    #: findings matched (and silenced) by the committed baseline
    baselined: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: List[str] = field(default_factory=list)


def run_analysis(
    roots: Sequence[Path],
    root: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Mapping[str, object]] = None,
    changed_lines: Optional[Mapping[str, Set[int]]] = None,
) -> AnalysisResult:
    """Run every rule over every Python file under ``roots``.

    ``root`` anchors the relative paths rules scope on (defaults to the
    common current directory).  ``changed_lines`` — a ``rel_path -> {line}``
    map, see :mod:`repro.analysis.gitdiff` — restricts reported findings to
    those lines (``--diff`` incremental mode); suppression and baseline
    filtering still apply first, so diff mode never resurrects silenced
    findings.
    """
    root = Path(root) if root is not None else Path.cwd()
    active = list(rules) if rules is not None else all_rules()
    known_fingerprints = (
        baseline_fingerprints(baseline) if baseline is not None else set()
    )
    result = AnalysisResult()
    for path in iter_python_files(roots):
        try:
            module = parse_module(path, root)
        except (SyntaxError, UnicodeDecodeError) as error:
            result.parse_errors.append(f"{path}: {error}")
            continue
        result.files_checked += 1
        for rule in active:
            if not rule.applies_to(module.rel_path):
                continue
            for finding in rule.check(module):
                if _is_suppressed(module, finding):
                    result.suppressed.append(finding)
                elif finding.fingerprint in known_fingerprints:
                    result.baselined.append(finding)
                elif (
                    changed_lines is not None
                    and finding.line not in changed_lines.get(finding.path, set())
                ):
                    continue
                else:
                    result.findings.append(finding)
    result.findings.sort(key=lambda f: (f.path, f.line, f.rule_id))
    return result
