"""Resource-hygiene rule (supporting the out-of-core storage invariants).

Page stores own real OS resources — mmap handles, SQLite connections, file
descriptors.  A store acquired in library, example or benchmark code and
closed only on the success path leaks those resources the moment an assert
or exception fires between acquisition and ``close()`` — which on the
store-backend CI matrix turns into flaky cross-test failures.  The rule
demands ``with``/``contextlib.closing``/``try-finally`` around every
acquisition whose result does not escape the function (returned, yielded,
stored on an object, or handed to another constructor — those transfers move
the close obligation to the new owner).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from ..core import Finding, ParsedModule, Rule, register
from .common import dotted_name, iter_scopes, walk_scope

#: Calls that hand back a resource the caller must close.
ACQUIRING_CALLS = {
    "open_page_store",
    "PageFile",
    "stream_node_database",
    "load_database",
    "clone_database",
}


def _acquired_name(node: ast.AST) -> Optional[str]:
    """The called acquirer name when ``node`` is an acquiring call."""
    if not isinstance(node, ast.Call):
        return None
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    tail = dotted.split(".")[-1]
    return tail if tail in ACQUIRING_CALLS else None


class _Acquisition:
    def __init__(self, var: str, node: ast.stmt, acquirer: str) -> None:
        self.var = var
        self.node = node
        self.acquirer = acquirer


@register
class UnclosedStoreRule(Rule):
    id = "res-unclosed-store"
    family = "resources"
    description = (
        "page stores / page files / streamed databases acquired without "
        "close() on all paths (with/closing/try-finally)"
    )
    hint = (
        "close the store on every path (INVARIANTS.md, resource hygiene): "
        "`with contextlib.closing(open_page_store(...)) as store:` or a "
        "try/finally around the use"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for scope, _body in iter_scopes(module.tree):
            yield from self._check_scope(module, scope)

    # ------------------------------------------------------------------ #
    def _check_scope(self, module: ParsedModule, scope: ast.AST) -> Iterator[Finding]:
        acquisitions: List[_Acquisition] = []
        for node in walk_scope(scope):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                acquirer = _acquired_name(node.value)
                if acquirer is not None and isinstance(target, ast.Name):
                    acquisitions.append(_Acquisition(target.id, node, acquirer))
            elif isinstance(node, ast.With):
                # `with open_page_store(...) as store:` and
                # `with closing(acquire(...)) as store:` are exactly right
                continue
        if not acquisitions:
            return
        with_managed = self._with_managed_names(scope)
        escaped = self._escaped_names(scope)
        finally_closed = self._closed_names(scope, finally_only=True)
        closed_somewhere = self._closed_names(scope, finally_only=False)
        for acquisition in acquisitions:
            var = acquisition.var
            if var in with_managed or var in escaped:
                continue
            if var in finally_closed:
                continue
            if var in closed_somewhere:
                yield module.finding(
                    self,
                    acquisition.node,
                    f"{acquisition.acquirer}(...) result {var!r} is closed "
                    "only on the success path (an exception in between leaks "
                    "the handle)",
                )
            else:
                yield module.finding(
                    self,
                    acquisition.node,
                    f"{acquisition.acquirer}(...) result {var!r} is never "
                    "closed in this scope",
                )

    def _with_managed_names(self, scope: ast.AST) -> Set[str]:
        """Names whose lifetime a ``with`` block manages in this scope."""
        managed: Set[str] = set()
        for node in walk_scope(scope):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            for item in node.items:
                expr = item.context_expr
                # with closing(store) / with closing(acquire(...)) as store
                for child in ast.walk(expr):
                    if isinstance(child, ast.Name):
                        managed.add(child.id)
                if item.optional_vars is not None and isinstance(
                    item.optional_vars, ast.Name
                ):
                    managed.add(item.optional_vars.id)
        return managed

    def _escaped_names(self, scope: ast.AST) -> Set[str]:
        """Names whose close obligation is transferred elsewhere."""
        escaped: Set[str] = set()
        for node in walk_scope(scope):
            if isinstance(node, ast.Return) and node.value is not None:
                escaped.update(self._direct_names(node.value))
            elif isinstance(node, (ast.Yield, ast.YieldFrom)) and node.value is not None:
                escaped.update(self._direct_names(node.value))
            elif isinstance(node, ast.Call):
                # passed into another constructor/function as a whole value
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    if isinstance(arg, ast.Name):
                        escaped.add(arg.id)
            elif isinstance(node, ast.Assign):
                # stored onto an object / into a container, or re-aliased
                if any(
                    isinstance(t, (ast.Attribute, ast.Subscript))
                    for t in node.targets
                ):
                    escaped.update(self._direct_names(node.value))
            elif isinstance(node, (ast.List, ast.Tuple, ast.Dict, ast.Set)):
                for element in ast.iter_child_nodes(node):
                    if isinstance(element, ast.Name):
                        escaped.add(element.id)
        return escaped

    @staticmethod
    def _direct_names(node: ast.AST) -> Set[str]:
        if isinstance(node, ast.Name):
            return {node.id}
        if isinstance(node, (ast.Tuple, ast.List)):
            return {e.id for e in node.elts if isinstance(e, ast.Name)}
        return set()

    def _closed_names(self, scope: ast.AST, finally_only: bool) -> Set[str]:
        """Names with a ``name.close()`` call (optionally: inside a finally)."""
        closed: Set[str] = set()
        if finally_only:
            nodes: List[ast.AST] = []
            for node in walk_scope(scope):
                if isinstance(node, ast.Try):
                    nodes.extend(node.finalbody)
            search: List[ast.AST] = []
            for node in nodes:
                search.extend(ast.walk(node))
        else:
            search = list(walk_scope(scope))
        for node in search:
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "close"
                and isinstance(node.func.value, ast.Name)
            ):
                closed.add(node.func.value.id)
        return closed
