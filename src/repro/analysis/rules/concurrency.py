"""Concurrency-hygiene rule (supporting invariant I2, ``INVARIANTS.md``).

The engine shards batches across worker threads/processes, and every worker
context imports the same ``repro.engine``/``repro.pir`` modules.  Mutable
state at module level is therefore shared by *all* of them — exactly how
worker contexts start bleeding into each other and bit-identity (I2) breaks
under parallelism.  The sanctioned containers are ``ContextVar`` (per-context
state), ``WeakKeyDictionary``/caches guarded by a module ``Lock`` (shared
memo, explicit synchronisation — the ``shared_kernel`` pattern in
``repro.pir.kernels``), or immutable constants (``tuple``/``frozenset``).
The shared-pack registry singleton (``SharedPackRegistry``) is sanctioned
explicitly: it is process-wide *by design* — one pack per machine — with
every mutation behind its internal lock and fork safety handled by
recording the owning pid per published pack (INVARIANTS.md, concurrency
hygiene).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from ..core import Finding, ParsedModule, Rule, register
from .common import dotted_name

#: Where module state is shared across engine worker contexts.
CONCURRENCY_SCOPE: Tuple[str, ...] = (
    "src/repro/engine/",
    "src/repro/pir/",
    "src/repro/serving/",
)

#: Constructors whose module-level instances are concurrency-sanctioned.
#: ``SharedPackRegistry`` is the deliberately process-wide shared-pack
#: singleton (internally locked, pid-guarded unlink) — see INVARIANTS.md.
_SANCTIONED_CALLS = {
    "ContextVar", "Lock", "RLock", "Semaphore", "BoundedSemaphore",
    "Condition", "Event", "local", "WeakKeyDictionary", "WeakValueDictionary",
    "MappingProxyType", "frozenset", "tuple", "SharedPackRegistry",
}

#: Mutable-container constructors that are not.
_MUTABLE_CALLS = {
    "dict", "list", "set", "bytearray", "defaultdict", "OrderedDict",
    "Counter", "deque",
}


def _mutable_value(node: ast.expr) -> Optional[str]:
    """A short description when ``node`` builds a mutable container."""
    if isinstance(node, ast.List):
        return "list literal"
    if isinstance(node, ast.Dict):
        return "dict literal"
    if isinstance(node, ast.Set):
        return "set literal"
    if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return "comprehension"
    if isinstance(node, ast.Call):
        dotted = dotted_name(node.func)
        if dotted is None:
            return None
        tail = dotted.split(".")[-1]
        if tail in _SANCTIONED_CALLS:
            return None
        if tail in _MUTABLE_CALLS:
            return f"{tail}()"
    return None


@register
class ModuleStateRule(Rule):
    id = "conc-module-state"
    family = "concurrency"
    description = (
        "unguarded mutable module-level state in engine/pir code (shared "
        "across every worker thread and context)"
    )
    hint = (
        "module state in engine/pir is shared by all worker contexts "
        "(INVARIANTS.md, concurrency hygiene); use a ContextVar, a "
        "Lock-guarded WeakKeyDictionary, or an immutable tuple/frozenset"
    )

    def applies_to(self, rel_path: str) -> bool:
        return any(rel_path.startswith(prefix) for prefix in CONCURRENCY_SCOPE)

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in module.tree.body:
            targets = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None:
                continue
            described = _mutable_value(value)
            if described is None:
                continue
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if not names or names == ["__all__"]:
                continue
            yield module.finding(
                self,
                node,
                f"module-level mutable state {names[0]!r} ({described}) is "
                "shared across all worker threads and contexts",
            )
        # rebinding module globals from functions is the same hazard
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Global):
                yield module.finding(
                    self,
                    node,
                    f"function rebinds module global(s) "
                    f"{', '.join(repr(n) for n in node.names)} without "
                    "synchronisation",
                )
