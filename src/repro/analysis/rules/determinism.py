"""Determinism rules (invariant I2, ``INVARIANTS.md``).

For a fixed workload and seed, results must be bit-identical across every
(shards, workers, worker-mode, kernel, backend) combination — the property
``tests/properties/`` pins dynamically.  These rules ban the classic ways a
code path silently stops being a pure function of its inputs: wall-clock
reads, the process-global ``random`` functions, OS entropy, and iterating a
``set`` into an ordering-sensitive position.

Scope: the bit-identity surface — ``src/repro/engine/``,
``src/repro/schemes/``, ``src/repro/pir/`` and ``src/repro/network/
indexed.py``.  ``time.perf_counter`` stays legal: timing *measurements* are
reported, never used to order or compute results.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set, Tuple

from ..core import Finding, ParsedModule, Rule, register
from .common import call_name, import_aliases, iter_scopes, walk_scope

#: The bit-identity surface (relative-path prefixes / exact files).
DETERMINISM_SCOPE: Tuple[str, ...] = (
    "src/repro/engine/",
    "src/repro/schemes/",
    "src/repro/pir/",
    "src/repro/network/indexed.py",
    "src/repro/serving/pool.py",
)

#: Wall-clock and entropy calls that make a result path nondeterministic.
BANNED_CALLS = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "os.urandom": "OS entropy",
    "os.getrandom": "OS entropy",
    "uuid.uuid1": "time/entropy-derived id",
    "uuid.uuid4": "entropy-derived id",
}

#: Module-level ``random.*`` functions sharing the unseeded global RNG.
#: ``random.Random(seed)`` instances are the sanctioned randomness.
GLOBAL_RANDOM_FUNCTIONS = {
    "betavariate", "choice", "choices", "expovariate", "gauss", "getrandbits",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate",
}


def _in_scope(rel_path: str) -> bool:
    return any(
        rel_path.startswith(prefix) if prefix.endswith("/") else rel_path == prefix
        for prefix in DETERMINISM_SCOPE
    )


@register
class WallclockRule(Rule):
    id = "det-wallclock"
    family = "determinism"
    description = (
        "wall-clock/entropy reads on the bit-identity surface "
        "(time.time, datetime.now, os.urandom, uuid4, ...)"
    )
    hint = (
        "results must be a pure function of the inputs (INVARIANTS.md I2); "
        "use time.perf_counter for duration measurements, secrets for real "
        "key material, or thread a seeded random.Random through"
    )

    def applies_to(self, rel_path: str) -> bool:
        return _in_scope(rel_path)

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = call_name(node, aliases)
            if qualified in BANNED_CALLS:
                yield module.finding(
                    self,
                    node,
                    f"{qualified}() is a {BANNED_CALLS[qualified]}; it breaks "
                    "bit-identical results across runs and configurations",
                )


@register
class UnseededRandomRule(Rule):
    id = "det-unseeded-random"
    family = "determinism"
    description = (
        "process-global random.* functions (unseeded, shared across "
        "threads) on the bit-identity surface"
    )
    hint = (
        "instantiate random.Random(seed) and thread it through "
        "(INVARIANTS.md I2); the module-level functions share one unseeded, "
        "thread-unsafe global state"
    )

    def applies_to(self, rel_path: str) -> bool:
        return _in_scope(rel_path)

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = call_name(node, aliases)
            if (
                qualified is not None
                and qualified.startswith("random.")
                and qualified.split(".", 1)[1] in GLOBAL_RANDOM_FUNCTIONS
            ):
                yield module.finding(
                    self,
                    node,
                    f"{qualified}() draws from the process-global unseeded RNG",
                )


def _is_setish_expr(node: ast.AST, setish_names: Set[str]) -> bool:
    """Whether ``node`` syntactically evaluates to a set/frozenset."""
    if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in {"set", "frozenset"}:
            return True
    if isinstance(node, ast.Name) and node.id in setish_names:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # set algebra stays a set when either side is known set-ish
        return _is_setish_expr(node.left, setish_names) or _is_setish_expr(
            node.right, setish_names
        )
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in {"union", "intersection", "difference",
                              "symmetric_difference"}:
            return _is_setish_expr(node.func.value, setish_names)
    return False


#: Attributes known (project-wide) to hold frozensets: the ``IndexEntry``
#: payload fields of :mod:`repro.schemes.index_entries`.
SET_TYPED_ATTRIBUTES = {"regions", "edges"}

#: Calls whose argument order is irrelevant, so a set argument is fine.
_ORDER_FREE_CALLS = {"sorted", "set", "frozenset", "len", "sum", "min", "max",
                     "any", "all", "bool"}


@register
class SetIterationRule(Rule):
    id = "det-set-iteration"
    family = "determinism"
    description = (
        "iterating a set/frozenset into an ordering-sensitive position "
        "(for-loops, list()/tuple() conversions) on the bit-identity surface"
    )
    hint = (
        "set iteration order is an implementation detail; wrap the "
        "iteration in sorted(...) so downstream adjacency/fetch/result "
        "order is reproducible (INVARIANTS.md I2)"
    )

    def applies_to(self, rel_path: str) -> bool:
        return _in_scope(rel_path)

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        # per-function (and module) flow-insensitive name inference: a name
        # ever bound to a set-ish expression in the scope counts as set-ish
        for scope, _body in iter_scopes(module.tree):
            setish: Set[str] = set()
            for node in walk_scope(scope):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Name) and _is_setish_expr(
                        node.value, setish
                    ):
                        setish.add(target.id)
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    if isinstance(node.target, ast.Name) and _is_setish_expr(
                        node.value, setish
                    ):
                        setish.add(node.target.id)
            yield from self._check_scope(module, scope, setish)

    def _iterates_set(self, iterable: ast.AST, setish: Set[str]) -> bool:
        if _is_setish_expr(iterable, setish):
            return True
        # project knowledge: IndexEntry.regions / IndexEntry.edges hold
        # frozensets, whatever the receiver is called
        if (
            isinstance(iterable, ast.Attribute)
            and iterable.attr in SET_TYPED_ATTRIBUTES
        ):
            return True
        return False

    def _check_scope(
        self, module: ParsedModule, scope: ast.AST, setish: Set[str]
    ) -> Iterator[Finding]:
        # comprehensions that feed an order-insensitive consumer directly
        # (sorted({...}), frozenset(x for x in s), ...) are fine
        order_free: Set[int] = set()
        for node in walk_scope(scope):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _ORDER_FREE_CALLS
            ):
                for arg in node.args:
                    order_free.add(id(arg))
        for node in walk_scope(scope):
            iterables = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                if id(node) not in order_free:
                    iterables.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in {"list", "tuple", "enumerate"} and node.args:
                    iterables.append(node.args[0])
            for iterable in iterables:
                if self._iterates_set(iterable, setish):
                    yield module.finding(
                        self,
                        node,
                        "iteration order of a set/frozenset leaks into an "
                        "ordering-sensitive position",
                    )
