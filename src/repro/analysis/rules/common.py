"""Shared AST helpers for the rule implementations.

Everything here is deliberately simple, syntactic analysis: the rules trade
soundness for reviewability, and the property-test suite remains the dynamic
backstop (see ``INVARIANTS.md``).  The helpers resolve dotted call targets
through the module's import aliases (``import random as _random`` makes
``_random.Random`` resolve to ``random.Random``) and walk child nodes with
parent tracking where a rule needs enclosing-context questions.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

__all__ = [
    "call_name",
    "dotted_name",
    "import_aliases",
    "iter_scopes",
    "names_in",
    "resolve_qualified",
]


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name -> imported dotted path, for every import in the module."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                aliases[name.asname or name.name.split(".")[0]] = (
                    name.name if name.asname else name.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for name in node.names:
                if name.name == "*":
                    continue
                aliases[name.asname or name.name] = f"{node.module}.{name.name}"
    return aliases


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def resolve_qualified(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """The import-resolved dotted path of a Name/Attribute chain.

    ``_random.Random`` with ``import random as _random`` resolves to
    ``random.Random``; ``urandom`` with ``from os import urandom`` resolves
    to ``os.urandom``.
    """
    dotted = dotted_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    resolved_head = aliases.get(head, head)
    return f"{resolved_head}.{rest}" if rest else resolved_head


def call_name(call: ast.Call, aliases: Dict[str, str]) -> Optional[str]:
    """The import-resolved dotted name of a call's target."""
    return resolve_qualified(call.func, aliases)


def names_in(node: ast.AST) -> Set[str]:
    """Every bare identifier referenced anywhere inside ``node``."""
    return {child.id for child in ast.walk(node) if isinstance(child, ast.Name)}


def iter_scopes(
    tree: ast.Module,
) -> Iterator[Tuple[ast.AST, List[ast.stmt]]]:
    """Yield ``(scope_node, body)`` for the module and every function in it.

    Class bodies are not scopes of their own here — methods are, and
    class-level statements behave like module-level ones for the rules that
    use this (they run at import time).
    """
    yield tree, tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.body


def walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` limited to one scope: nested function bodies are skipped.

    Lambdas and comprehensions stay in the enclosing scope (they read its
    names); nested ``def``s get their own :func:`iter_scopes` visit.
    """
    stack: List[ast.AST] = [scope]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.append(child)
