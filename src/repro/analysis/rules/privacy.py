"""Privacy-taint rules (invariant I1, ``INVARIANTS.md``).

The paper's core guarantee: the adversary sees PIR retrievals, never query
plaintext.  These rules track the *syntactic* shadow of that guarantee —
values whose names mark them as query-derived (source/target node ids, the
queried region pair, prepared-query internals) must not flow into
operator-visible sinks (``print``, ``logging``, exception messages), and the
adversary-view log ``queries_seen`` may only be written behind the sanctioned
``log_queries`` opt-in seam.

Name-based taint is deliberately heuristic: it costs near-zero review
overhead and the dynamic privacy tests (``tests/privacy/``, adversary-view
parity in the property suite) remain the sound backstop.  Scope: the
query-processing surface — ``src/repro/engine/``, ``src/repro/schemes/``,
``src/repro/pir/``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set, Tuple

from ..core import Finding, ParsedModule, Rule, register
from .common import dotted_name, walk_scope

#: The query-processing surface the taint rules watch.
PRIVACY_SCOPE: Tuple[str, ...] = (
    "src/repro/engine/",
    "src/repro/schemes/",
    "src/repro/pir/",
    "src/repro/serving/",
)

#: Identifiers treated as query-derived (the query plaintext and its direct
#: derivatives: endpoints, the region pair, prepared-query state).
TAINTED_NAMES = {
    "source", "target", "source_id", "target_id", "source_node", "target_node",
    "source_region", "target_region", "query", "prepared", "prepared_query",
    "pair", "plaintext",
}

#: Attribute accesses treated as query-derived wherever they appear
#: (``result.query``, ``prepared.source``, ...).
TAINTED_ATTRS = {"source", "target", "query", "pair", "prepared"}

#: Operator/server-visible sinks: resolved dotted prefixes of calls whose
#: arguments must stay plaintext-free.
_SINK_PREFIXES = ("logging.", "logger.", "log.", "warnings.warn",
                  "sys.stdout.", "sys.stderr.")


def _in_scope(rel_path: str) -> bool:
    return any(rel_path.startswith(prefix) for prefix in PRIVACY_SCOPE)


def _tainted_subnode(node: ast.AST) -> Optional[str]:
    """The first query-derived reference inside ``node``, if any."""
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and child.id in TAINTED_NAMES:
            return child.id
        if isinstance(child, ast.Attribute) and child.attr in TAINTED_ATTRS:
            # ``self.log_queries`` and friends are config, not plaintext
            dotted = dotted_name(child)
            if dotted is not None:
                return dotted
            return child.attr
    return None


def _is_sink_call(call: ast.Call) -> bool:
    if isinstance(call.func, ast.Name) and call.func.id == "print":
        return True
    dotted = dotted_name(call.func)
    if dotted is None:
        return False
    return any(
        dotted == prefix.rstrip(".") or dotted.startswith(prefix)
        for prefix in _SINK_PREFIXES
    )


def _formats_values(node: ast.AST) -> bool:
    """Whether an exception-argument expression interpolates runtime values."""
    for child in ast.walk(node):
        if isinstance(child, ast.JoinedStr):
            return True
        if isinstance(child, ast.Call) and isinstance(child.func, ast.Attribute):
            if child.func.attr == "format":
                return True
        if isinstance(child, ast.BinOp) and isinstance(child.op, (ast.Mod, ast.Add)):
            return True
    return False


@register
class PrivacyTaintRule(Rule):
    id = "privacy-taint"
    family = "privacy"
    description = (
        "query-derived values (source/target/query/pair/prepared) flowing "
        "into print/logging/exception messages on the query path"
    )
    hint = (
        "the adversary may see retrievals, never query plaintext "
        "(INVARIANTS.md I1); drop the value from the message, or record it "
        "behind the opt-in log_queries seam"
    )

    def applies_to(self, rel_path: str) -> bool:
        return _in_scope(rel_path)

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and _is_sink_call(node):
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    tainted = _tainted_subnode(arg)
                    if tainted is not None:
                        yield module.finding(
                            self,
                            node,
                            f"query-derived value {tainted!r} reaches an "
                            "operator-visible sink",
                        )
                        break
            elif isinstance(node, ast.Raise) and node.exc is not None:
                exc = node.exc
                args = exc.args if isinstance(exc, ast.Call) else [exc]
                for arg in args:
                    if not _formats_values(arg):
                        continue
                    tainted = _tainted_subnode(arg)
                    if tainted is not None:
                        yield module.finding(
                            self,
                            node,
                            f"query-derived value {tainted!r} is interpolated "
                            "into an exception message (exceptions end up in "
                            "server/operator logs)",
                        )
                        break


@register
class QueriesSeenRule(Rule):
    id = "privacy-queries-seen"
    family = "privacy"
    description = (
        "writes to the adversary-view log queries_seen outside the "
        "sanctioned log_queries opt-in guard"
    )
    hint = (
        "queries_seen is the *opt-in* adversary view (INVARIANTS.md I1); "
        "guard the append with `if self.log_queries:` (or the equivalent "
        "conditional) so production serving never accumulates it"
    )

    _WRITE_METHODS = {"append", "extend", "insert", "__iadd__"}

    def applies_to(self, rel_path: str) -> bool:
        return _in_scope(rel_path)

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        yield from self._visit(module, module.tree, guarded=False)

    def _mentions_log_queries(self, node: ast.AST) -> bool:
        for child in ast.walk(node):
            if isinstance(child, ast.Name) and child.id == "log_queries":
                return True
            if isinstance(child, ast.Attribute) and child.attr == "log_queries":
                return True
        return False

    def _is_queries_seen_write(self, node: ast.AST) -> Optional[ast.AST]:
        """The offending node when ``node`` writes to ``*.queries_seen``."""
        # method writes: <...>.queries_seen.append(...) / a bound reference
        # to the method (``log = self.queries_seen.append``)
        if isinstance(node, ast.Attribute) and node.attr in self._WRITE_METHODS:
            target = node.value
            if isinstance(target, ast.Attribute) and target.attr == "queries_seen":
                return node
            if isinstance(target, ast.Name) and target.id == "queries_seen":
                return node
        # augmented assignment: self.queries_seen += [...]
        if isinstance(node, ast.AugAssign):
            target = node.target
            if isinstance(target, ast.Attribute) and target.attr == "queries_seen":
                return node
        return None

    def _visit(
        self, module: ParsedModule, node: ast.AST, guarded: bool
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            child_guarded = guarded
            if isinstance(child, ast.If) and self._mentions_log_queries(child.test):
                child_guarded = True
            if isinstance(child, ast.IfExp) and self._mentions_log_queries(
                child.test
            ):
                child_guarded = True
            offending = None if child_guarded else self._is_queries_seen_write(child)
            if offending is not None:
                yield module.finding(
                    self,
                    offending,
                    "queries_seen is written outside a log_queries guard",
                )
            yield from self._visit(module, child, child_guarded)
