"""Project-specific rule families of the static analysis pass.

Importing this package registers every bundled rule with the registry in
:mod:`repro.analysis.core`.  Each module maps to one invariant family of
``INVARIANTS.md``:

* :mod:`.privacy` — I1, no query plaintext in operator-visible channels;
* :mod:`.determinism` — I2, bit-identical results;
* :mod:`.optional_deps` — I3, numpy/scipy stay optional;
* :mod:`.concurrency` — module-state hygiene under the parallel engine;
* :mod:`.resources` — page-store/file lifetime hygiene.
"""

from __future__ import annotations

from . import concurrency, determinism, optional_deps, privacy, resources

__all__ = [
    "concurrency",
    "determinism",
    "optional_deps",
    "privacy",
    "resources",
]
