"""Optional-dependency rules (invariant I3, ``INVARIANTS.md``).

Since PR 5 the repository runs on a bare interpreter: numpy and scipy are
accelerators, never requirements, and a dedicated CI leg proves it
dynamically.  This rule proves it statically: a module-level import of
numpy/scipy must be wrapped in ``try: ... except ImportError:`` — and even
guarded module-level imports are confined to the two allowlisted modules so
the fallback seams stay auditable in one place.  Function-level imports must
carry the same guard (or live in an allowlisted module whose callers are
already gated, like the scipy fast path of ``network.indexed``).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from ..core import Finding, ParsedModule, Rule, register

#: Top-level package names the no-numpy CI leg runs without.
OPTIONAL_PACKAGES = {"numpy", "scipy"}

#: Modules allowed to import numpy/scipy at module level (behind a guard):
#: the kernel pack and the generator RNG/triangulation fallback seams.
MODULE_IMPORT_ALLOWLIST: Tuple[str, ...] = (
    "src/repro/pir/kernels.py",
    "src/repro/network/generators.py",
)


def _guard_catches_import_error(handler: ast.ExceptHandler) -> bool:
    def names(node: Optional[ast.expr]) -> Iterator[str]:
        if node is None:  # bare except
            yield "ImportError"
        elif isinstance(node, ast.Tuple):
            for element in node.elts:
                yield from names(element)
        elif isinstance(node, ast.Name):
            yield node.id
        elif isinstance(node, ast.Attribute):
            yield node.attr

    return any(
        name in {"ImportError", "ModuleNotFoundError", "Exception"}
        for name in names(handler.type)
    )


def _optional_package(node: ast.stmt) -> Optional[str]:
    """The optional top-level package an import statement pulls in, if any."""
    if isinstance(node, ast.Import):
        for name in node.names:
            head = name.name.split(".")[0]
            if head in OPTIONAL_PACKAGES:
                return head
    elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
        head = node.module.split(".")[0]
        if head in OPTIONAL_PACKAGES:
            return head
    return None


@register
class OptionalDepsImportRule(Rule):
    id = "optdeps-import"
    family = "optional-deps"
    description = (
        "numpy/scipy imports that would break the bare-interpreter install: "
        "unguarded anywhere, or module-level outside the allowlist"
    )
    hint = (
        "numpy/scipy are optional (INVARIANTS.md I3); wrap the import in "
        "try/except ImportError, and keep module-level imports inside the "
        "allowlisted fallback seams (pir/kernels.py, network/generators.py)"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        allowlisted = module.rel_path in MODULE_IMPORT_ALLOWLIST
        yield from self._check_body(
            module, module.tree.body, guarded=False, module_level=True,
            allowlisted=allowlisted,
        )

    def _check_body(
        self,
        module: ParsedModule,
        body: Iterator[ast.stmt],
        guarded: bool,
        module_level: bool,
        allowlisted: bool,
    ) -> Iterator[Finding]:
        for node in body:
            package = _optional_package(node)
            if package is not None:
                if not guarded:
                    yield module.finding(
                        self,
                        node,
                        f"unguarded import of optional dependency {package!r} "
                        "(the no-numpy leg would fail here)",
                    )
                elif module_level and not allowlisted:
                    yield module.finding(
                        self,
                        node,
                        f"module-level {package!r} import outside the "
                        "optional-deps allowlist",
                    )
            if isinstance(node, ast.Try):
                try_guards = guarded or any(
                    _guard_catches_import_error(handler)
                    for handler in node.handlers
                )
                yield from self._check_body(
                    module, node.body, try_guards, module_level, allowlisted
                )
                for handler in node.handlers:
                    yield from self._check_body(
                        module, handler.body, guarded, module_level, allowlisted
                    )
                yield from self._check_body(
                    module, node.orelse, guarded, module_level, allowlisted
                )
                yield from self._check_body(
                    module, node.finalbody, guarded, module_level, allowlisted
                )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_body(
                    module, node.body, guarded, False, allowlisted
                )
            elif isinstance(node, ast.ClassDef):
                yield from self._check_body(
                    module, node.body, guarded, module_level, allowlisted
                )
            elif isinstance(node, (ast.If, ast.For, ast.While, ast.With)):
                # ``if TYPE_CHECKING:`` imports never execute at runtime, so
                # they are fully exempt (guarded, and not "module-level")
                type_checking = isinstance(node, ast.If) and any(
                    isinstance(sub, (ast.Name, ast.Attribute))
                    and (getattr(sub, "id", None) == "TYPE_CHECKING"
                         or getattr(sub, "attr", None) == "TYPE_CHECKING")
                    for sub in ast.walk(node.test)
                )
                for sub_body in (
                    node.body,
                    node.orelse if hasattr(node, "orelse") else [],
                ):
                    yield from self._check_body(
                        module,
                        sub_body,
                        guarded or type_checking,
                        module_level and not type_checking,
                        allowlisted,
                    )
