"""Changed-line extraction for ``repro-lint --diff <ref>``.

Incremental enforcement: restrict findings to lines the working tree changes
relative to a git ref, so a PR is gated on *its own* lines without touching
the committed baseline.  Parsing sticks to ``git diff --unified=0`` hunk
headers — no third-party diff library, and rename detection is left to git.
"""

from __future__ import annotations

import re
import subprocess
from pathlib import Path
from typing import Dict, Set

__all__ = ["changed_lines"]

_HUNK_RE = re.compile(r"^@@ -\d+(?:,\d+)? \+(?P<start>\d+)(?:,(?P<count>\d+))? @@")
_FILE_RE = re.compile(r"^\+\+\+ (?:b/)?(?P<path>.+)$")


def parse_unified_diff(diff_text: str) -> Dict[str, Set[int]]:
    """``path -> {added/modified line numbers}`` from a ``-U0`` unified diff."""
    changed: Dict[str, Set[int]] = {}
    current: Set[int] = set()
    for line in diff_text.splitlines():
        file_match = _FILE_RE.match(line)
        if file_match:
            path = file_match.group("path")
            if path == "/dev/null":
                current = set()
                continue
            current = changed.setdefault(path, set())
            continue
        hunk_match = _HUNK_RE.match(line)
        if hunk_match:
            start = int(hunk_match.group("start"))
            count_text = hunk_match.group("count")
            count = 1 if count_text is None else int(count_text)
            current.update(range(start, start + count))
    return {path: lines for path, lines in changed.items() if lines}


def changed_lines(ref: str, root: Path) -> Dict[str, Set[int]]:
    """Changed Python lines of the working tree relative to ``ref``.

    Paths come back relative to ``root`` (the repository checkout the
    analysis runs from), matching :class:`~repro.analysis.core.Finding`
    paths.
    """
    completed = subprocess.run(
        ["git", "diff", "--unified=0", "--no-color", ref, "--", "*.py"],
        cwd=str(root),
        capture_output=True,
        text=True,
        check=True,
    )
    return parse_unified_diff(completed.stdout)
