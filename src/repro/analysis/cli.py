"""``repro-lint`` — command line for the invariant-aware analysis pass.

Usage (also available as ``python -m repro.analysis``)::

    repro-lint [paths...]            # text report, exit 1 on findings
    repro-lint --json                # machine-readable, for CI
    repro-lint --diff origin/main    # only findings on changed lines
    repro-lint --list-rules          # registered rules by family
    repro-lint --write-baseline      # grandfather current findings

Exit codes: 0 clean, 1 findings reported, 2 usage/parse errors.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Set

from . import gitdiff
from .core import (
    AnalysisResult,
    Finding,
    all_rules,
    load_baseline,
    run_analysis,
    write_baseline,
)

__all__ = ["main"]

#: Roots linted when no paths are given: the library plus the runnable
#: surfaces (benchmarks/examples) that hold page-store and perf-gate code.
DEFAULT_ROOTS = ("src", "benchmarks", "examples")

DEFAULT_BASELINE = ".repro-lint-baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "static analysis for the repository invariants (privacy taint, "
            "determinism, optional deps, concurrency and resource hygiene); "
            "see INVARIANTS.md for the contract each rule enforces"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files/directories to lint (default: {' '.join(DEFAULT_ROOTS)})",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root the rule path-scopes anchor on (default: cwd)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit a JSON report instead of text",
    )
    parser.add_argument(
        "--diff",
        metavar="REF",
        help="report only findings on lines changed relative to a git ref",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file of grandfathered findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file even if present",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules grouped by family and exit",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also report findings silenced by inline allows or the baseline",
    )
    return parser


def _list_rules() -> str:
    lines: List[str] = []
    by_family: Dict[str, List[str]] = {}
    for rule in all_rules():
        by_family.setdefault(rule.family, []).append(
            f"  {rule.id:<24} {rule.description}"
        )
    for family in sorted(by_family):
        lines.append(f"{family}:")
        lines.extend(by_family[family])
    return "\n".join(lines)


def _render_text(result: AnalysisResult, show_suppressed: bool) -> str:
    lines: List[str] = []
    for finding in result.findings:
        lines.append(finding.format_text())
    if show_suppressed:
        for label, group in (
            ("suppressed", result.suppressed),
            ("baselined", result.baselined),
        ):
            for finding in group:
                lines.append(f"[{label}] {finding.format_text()}")
    for error in result.parse_errors:
        lines.append(f"parse error: {error}")
    count = len(result.findings)
    noun = "finding" if count == 1 else "findings"
    lines.append(
        f"repro-lint: {count} {noun}, "
        f"{len(result.suppressed)} suppressed, "
        f"{len(result.baselined)} baselined, "
        f"{result.files_checked} files checked"
    )
    return "\n".join(lines)


def _render_json(result: AnalysisResult, show_suppressed: bool) -> str:
    document: Dict[str, object] = {
        "findings": [finding.to_json() for finding in result.findings],
        "files_checked": result.files_checked,
        "parse_errors": result.parse_errors,
        "counts": {
            "findings": len(result.findings),
            "suppressed": len(result.suppressed),
            "baselined": len(result.baselined),
        },
    }
    if show_suppressed:
        document["suppressed"] = [f.to_json() for f in result.suppressed]
        document["baselined"] = [f.to_json() for f in result.baselined]
    return json.dumps(document, indent=2)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    root = Path(args.root)
    roots = [Path(p) for p in args.paths] if args.paths else [
        root / name for name in DEFAULT_ROOTS if (root / name).exists()
    ]

    baseline: Optional[Mapping[str, object]] = None
    baseline_path = root / args.baseline
    if not args.no_baseline and not args.write_baseline and baseline_path.exists():
        try:
            baseline = load_baseline(baseline_path)
        except (ValueError, json.JSONDecodeError) as error:
            print(f"repro-lint: bad baseline {baseline_path}: {error}", file=sys.stderr)
            return 2

    changed: Optional[Dict[str, Set[int]]] = None
    if args.diff:
        try:
            changed = gitdiff.changed_lines(args.diff, root)
        except (subprocess.CalledProcessError, OSError) as error:
            print(f"repro-lint: git diff against {args.diff!r} failed: {error}",
                  file=sys.stderr)
            return 2

    result = run_analysis(
        roots, root=root, baseline=baseline, changed_lines=changed
    )

    if args.write_baseline:
        write_baseline(baseline_path, result.findings)
        print(
            f"repro-lint: wrote {len(result.findings)} grandfathered "
            f"finding(s) to {baseline_path}"
        )
        return 0

    if args.as_json:
        print(_render_json(result, args.show_suppressed))
    else:
        print(_render_text(result, args.show_suppressed))

    if result.parse_errors:
        return 2
    return 1 if result.findings else 0
