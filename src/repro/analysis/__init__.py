"""Invariant-aware static analysis for the repository (``repro-lint``).

The package statically enforces the contracts recorded in ``INVARIANTS.md``:
query-plaintext privacy (I1), bit-identical determinism (I2), optional
numpy/scipy (I3), plus concurrency and resource hygiene.  See
:mod:`repro.analysis.core` for the machinery, :mod:`repro.analysis.rules`
for the rule families, and :mod:`repro.analysis.cli` for the command line
(``python -m repro.analysis`` / ``repro-lint``).
"""

from __future__ import annotations

from .core import (
    AnalysisResult,
    Finding,
    ParsedModule,
    Rule,
    all_rules,
    iter_python_files,
    parse_module,
    register,
    run_analysis,
)

__all__ = [
    "AnalysisResult",
    "Finding",
    "ParsedModule",
    "Rule",
    "all_rules",
    "iter_python_files",
    "parse_module",
    "register",
    "run_analysis",
]
