"""``python -m repro.analysis`` — entry point for the repro-lint CLI."""

from __future__ import annotations

import sys

from .cli import main

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # report piped into `head` etc.; exit quietly like any unix filter
        sys.stderr.close()
        sys.exit(0)
