"""Batched query engine: executes query workloads on the fast path.

See :class:`~repro.engine.query_engine.QueryEngine` — batches of queries run
against one scheme under its shared query plan, with an LRU cache over
client-side page decoding and batched result verification on the array-backed
search core.
"""

from .cache import LruCache, NullCache
from .query_engine import BatchResult, QueryEngine

__all__ = [
    "BatchResult",
    "LruCache",
    "NullCache",
    "QueryEngine",
]
