"""A small LRU cache used by the query engine's client-side page cache."""

from __future__ import annotations

import threading
from typing import Any, Dict, Hashable, Optional


class LruCache:
    """Least-recently-used cache with hit/miss accounting.

    Backed by the insertion order of a plain dict: a ``get`` re-inserts the
    key (making it most-recent) and a ``put`` beyond capacity evicts the
    oldest entry.  Values must tolerate being shared between users — the
    engine only caches objects that are treated as read-only after decode.

    Operations are guarded by a lock: within one engine worker the pipelined
    retrieval of the next query runs concurrently with the solve of the
    current one, and both touch the worker's cache.
    """

    __slots__ = ("capacity", "hits", "misses", "_entries", "_lock")

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: Dict[Hashable, Any] = {}
        self._lock = threading.Lock()

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value for ``key``, or ``None`` on a miss."""
        with self._lock:
            try:
                value = self._entries.pop(key)
            except KeyError:
                self.misses += 1
                return None
            self._entries[key] = value  # re-insert as most recently used
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh ``key``; evicts the least-recent entry when full."""
        with self._lock:
            entries = self._entries
            if key in entries:
                del entries[key]
            elif len(entries) >= self.capacity:
                del entries[next(iter(entries))]
            entries[key] = value

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when never used)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LruCache(capacity={self.capacity}, size={len(self._entries)}, "
            f"hits={self.hits}, misses={self.misses})"
        )


class NullCache:
    """A cache-shaped no-op used when caching is disabled.

    Measurement runs need an engine without client-side decode caching
    (``cache_entries=0``): every ``get`` misses, every ``put`` is dropped, and
    the miss count keeps the batch statistics meaningful.  The counter is
    lock-guarded for the same reason :class:`LruCache` is — within one
    worker the pipelined retrieval thread and the solve thread probe the
    cache concurrently.
    """

    __slots__ = ("hits", "misses", "_lock")

    capacity = 0

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()

    def get(self, key: Hashable) -> Optional[Any]:
        with self._lock:
            self.misses += 1
        return None

    def put(self, key: Hashable, value: Any) -> None:
        return None

    def clear(self) -> None:
        return None

    @property
    def hit_rate(self) -> float:
        return 0.0

    def __len__(self) -> int:
        return 0

    def __contains__(self, key: Hashable) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NullCache(misses={self.misses})"
