"""The batched query engine: the fast path for executing query workloads.

A :class:`QueryEngine` executes batches of ``(source, target)`` queries
against one scheme under the scheme's single fixed
:class:`~repro.schemes.plan.QueryPlan`.  Privacy is untouched — every query
still runs the full multi-round PIR protocol and is checked against the plan
— but the engine makes the *client side* fast:

* the batch is **sharded across worker contexts** (``run_batch(...,
  workers=N)``): each context owns its own PIR client state and its own LRU
  decode cache, so shards execute concurrently without sharing mutable
  protocol state, and their statistics are merged into one
  :class:`BatchResult`;
* worker contexts can run as **threads or processes**
  (``worker_mode="thread" | "process"``): thread workers overlap the PIR
  rounds of the next query with the solve of the current one (pipelining),
  while process workers ship the CPU-bound solve phase — record decode, CSR
  assembly and the search — to a ``ProcessPoolExecutor`` via the schemes'
  picklable :class:`~repro.schemes.base.RemoteSolve` split, escaping the GIL
  entirely;
* the engine's PIR page store can be **sharded** (``QueryEngine(...,
  shards=S)``): every worker context owns its own per-shard connections to
  ``S`` independent sub-databases (see
  :class:`~repro.pir.sharded.ShardedPirSimulator`), the storage layout a
  scaled deployment serves from;
* each worker's LRU cache (see :class:`~repro.engine.cache.LruCache`) shares
  the decoded header, decoded region payloads and *assembled subgraph CSRs*
  across the queries of its shard (``cache_entries=0`` disables caching for
  measurement runs via :class:`~repro.engine.cache.NullCache`);
* result verification runs through the array-backed search core
  (:mod:`repro.network.indexed`), grouping the batch by source so each
  distinct source costs one Dijkstra over the compiled network;
* indistinguishability is asserted over the whole batch (every query must
  produce the identical adversary view, Theorem 1).

Results are **independent of the worker count, worker mode and shard
count**: dummy-page retrievals draw from a per-query RNG derived from the
scheme's dummy seed and the query's position in the batch, and the solve
phase is a deterministic function of the fetched bytes, so every
``(workers, worker_mode, shards)`` combination produces traces identical to
``run_batch(pairs, workers=1)`` (property-tested).

``repro-spc batch`` on the command line and
:func:`repro.bench.runner.run_workload` (i.e. every figure/table benchmark)
execute through this engine.
"""

from __future__ import annotations

import math
import random
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import SchemeError
from ..network import NodeId, all_pairs_sample_costs
from ..pir import (
    SecureCoprocessor,
    ShardedPageStore,
    ShardedPirSimulator,
    UsablePirSimulator,
    numpy_available,
    resolve_kernel,
    shared_pack_registry,
)
from ..schemes import files as scheme_files
from ..schemes.base import PreparedQuery, QueryResult, Scheme, client_state_scope
from ..serving.pool import SolvePool
from ..storage import clone_database
from .cache import LruCache, NullCache

QueryPair = Tuple[NodeId, NodeId]

#: One (index, pair) work item of a batch.
_IndexedPair = Tuple[int, QueryPair]

#: Supported worker execution modes.
WORKER_MODES = ("thread", "process")


@dataclass
class BatchResult:
    """Everything one batch of queries produced."""

    scheme_name: str
    pairs: List[QueryPair]
    results: List[QueryResult]
    #: True shortest-path costs per pair (None when verification was skipped).
    true_costs: Optional[Dict[QueryPair, float]]
    #: Whether every query returned the true shortest-path cost.
    all_costs_correct: bool
    #: Whether every query produced the identical adversary view.
    indistinguishable: bool
    #: Page-cache statistics accumulated during the batch (summed over the
    #: participating worker contexts).
    cache_hits: int
    cache_misses: int
    #: Wall-clock seconds the batch took to execute (client machine time,
    #: not the simulated PIR response time).
    wall_seconds: float
    #: Number of worker contexts the batch was sharded across.
    workers: int = 1
    #: How the worker contexts executed ("thread" or "process").
    worker_mode: str = "thread"
    #: Number of PIR database shards each worker context connects to.
    shards: int = 1
    #: Page-store backend the engine served the batch from.
    store_backend: str = "memory"
    #: XOR server kernel the PIR reads were served through ("numpy" or
    #: "bigint"), or None when the engine read pages directly.
    pir_kernel: Optional[str] = None
    #: Whether the PIR reads were served by remote shard servers over TCP.
    remote: bool = False

    @property
    def num_queries(self) -> int:
        return len(self.results)

    @property
    def mean_response_s(self) -> float:
        """Mean simulated response time per query."""
        if not self.results:
            return 0.0
        return sum(result.response.total_s for result in self.results) / len(self.results)

    @property
    def queries_per_second(self) -> float:
        """Executed queries per wall-clock second (0.0 for an empty batch)."""
        if not self.results or self.wall_seconds <= 0.0:
            return 0.0
        return len(self.results) / self.wall_seconds

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


class _WorkerContext:
    """Per-shard client state: a private PIR simulator and decode cache."""

    __slots__ = ("pir", "cache")

    def __init__(self, pir: UsablePirSimulator, cache) -> None:
        self.pir = pir
        self.cache = cache


class QueryEngine:
    """Executes batches of private shortest-path queries against one scheme.

    ``cache_entries`` sizes each worker context's decode cache (``0`` disables
    caching entirely — measurement runs use this to exclude cache effects).
    ``shards`` splits the PIR page store across that many independent
    sub-databases; every worker context owns its own connections to them.
    ``store_backend``/``store_dir`` re-home the scheme's database onto
    another page-store backend (memory/mmap/sqlite; pages stream across, the
    database is never materialised in RAM) and serve every PIR read from it.
    ``pir_kernel`` selects how every PIR read is served: a real two-server
    XOR retrieval over a packed server kernel
    (``"auto"``/``"numpy"``/``"bigint"`` — see :mod:`repro.pir.kernels`) or
    direct page reads (``"off"``).  Left unset, the engine serves XOR
    retrievals through the packed numpy kernel whenever numpy is importable
    and falls back to direct reads on a bare interpreter — the big-int
    kernel is never *defaulted* into the serving path, since its per-read
    fold is only worth paying for when it is the thing being measured.
    ``serving`` (a :class:`~repro.serving.server.ShardCluster` or a list of
    ``(host, port)`` addresses, one per shard) routes every PIR read to live
    shard servers over TCP instead of in-process serving; ``solve_pool``
    supplies a shared persistent :class:`~repro.serving.pool.SolvePool` for
    process-mode batches (the engine otherwise creates and owns one lazily —
    use the engine as a context manager, or call :meth:`close`, to reclaim
    its workers deterministically).  None of these knobs changes query
    results, traces or adversary views (property-tested for every kernel,
    locally and over the wire).
    """

    def __init__(
        self,
        scheme: Scheme,
        cache_entries: int = 512,
        shards: int = 1,
        shard_strategy: str = "round-robin",
        store_backend: Optional[str] = None,
        store_dir=None,
        pir_kernel: Optional[str] = None,
        serving=None,
        solve_pool: Optional[SolvePool] = None,
    ) -> None:
        if cache_entries < 0:
            raise SchemeError(
                f"cache_entries must be non-negative, got {cache_entries}"
            )
        if shards < 1:
            raise SchemeError(f"shards must be positive, got {shards}")
        self.serving_addresses: Optional[List[Tuple[str, int]]] = None
        if serving is not None:
            addresses = getattr(serving, "addresses", serving)
            self.serving_addresses = [(host, int(port)) for host, port in addresses]
            if not self.serving_addresses:
                raise SchemeError("serving needs at least one shard address")
            if shards == 1:
                shards = len(self.serving_addresses)
            elif shards != len(self.serving_addresses):
                raise SchemeError(
                    f"shards={shards} does not match the "
                    f"{len(self.serving_addresses)} serving addresses"
                )
        self.scheme = scheme
        #: The database every PIR read is served from: the scheme's own, or a
        #: bit-identical clone on the requested page-store backend.
        if store_backend is not None and store_backend != scheme.database.store_backend:
            self.database = clone_database(
                scheme.database, store_backend=store_backend, store_dir=store_dir
            )
        else:
            self.database = scheme.database
        self.store_backend = self.database.store_backend
        #: Resolved XOR serving kernel (None = direct page reads).  Unset
        #: defaults to the packed numpy kernel when numpy is importable and
        #: to direct reads otherwise (the "auto default" — ROADMAP item 2).
        if pir_kernel in (None, "default"):
            self.pir_kernel: Optional[str] = "numpy" if numpy_available() else None
        elif pir_kernel == "off":
            self.pir_kernel = None
        else:
            self.pir_kernel = resolve_kernel(pir_kernel)
        #: The shared plan every query of every batch runs under.
        self.plan = scheme.plan
        self.cache_entries = cache_entries
        self.shards = shards
        self.shard_strategy = shard_strategy
        #: The page partitioning shared by every worker context's shard
        #: connections (a pure view over :attr:`database` — no page copies).
        self._shard_store = (
            ShardedPageStore(self.database, shards, shard_strategy)
            if shards > 1
            else None
        )
        self.page_cache = self._new_cache()
        #: Worker contexts, created lazily and reused across batches so their
        #: caches keep paying off; context 0 wraps :attr:`page_cache` (and the
        #: scheme's own PIR simulator when the store is unsharded and
        #: un-re-homed).
        first_pir = (
            scheme.pir
            if shards == 1
            and self.database is scheme.database
            and self.pir_kernel is None
            and self.serving_addresses is None
            else self._new_pir()
        )
        self._contexts: List[_WorkerContext] = [
            _WorkerContext(first_pir, self.page_cache)
        ]
        #: Persistent process pool for the remote solve phases: reused
        #: across batches, created lazily unless the caller supplied one.
        self._solve_pool = solve_pool
        self._owns_solve_pool = solve_pool is None
        #: Shared-pack registry keys this engine published (unlinked on close).
        self._pack_keys: List[Tuple[object, ...]] = []

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Release owned resources: the solve pool and remote connections.

        A pool supplied by the caller is left running (they own it);
        contexts' remote PIR connections are always closed — the shard
        servers themselves keep serving.  Shared packs this engine published
        for its process workers are withdrawn and their shared-memory
        segments unlinked.
        """
        if self._pack_keys:
            keys, self._pack_keys = self._pack_keys, []
            shared_pack_registry().unpublish(keys)
        if self._owns_solve_pool and self._solve_pool is not None:
            self._solve_pool.close()
            self._solve_pool = None
        for context in self._contexts:
            if context.pir is not self.scheme.pir:
                closer = getattr(context.pir, "close", None)
                if closer is not None:
                    closer()

    @property
    def solve_pool(self) -> SolvePool:
        """The engine's persistent process pool (created on first use)."""
        if self._solve_pool is None:
            self._solve_pool = SolvePool()
            self._owns_solve_pool = True
        return self._solve_pool

    def execute(self, source: NodeId, target: NodeId) -> QueryResult:
        """Answer a single query through the engine's page cache."""
        with scheme_files.decode_cache_scope(self.page_cache):
            if self._contexts[0].pir is not self.scheme.pir:
                # serve the query through the engine's own simulator (re-homed
                # database, shards, or XOR-kernel serving) via context 0
                with client_state_scope(
                    self._contexts[0].pir, self.scheme._dummy_rng
                ):
                    return self.scheme.query(source, target)
            return self.scheme.query(source, target)

    def run_batch(
        self,
        pairs: Sequence[QueryPair],
        verify_costs: bool = True,
        cost_tolerance: float = 1e-4,
        workers: int = 1,
        pipeline: bool = True,
        worker_mode: str = "thread",
    ) -> BatchResult:
        """Execute every query of ``pairs`` and verify the batch as a whole.

        ``workers`` shards the batch round-robin across that many worker
        contexts (capped at the batch size).  ``worker_mode="thread"`` runs
        the contexts on threads, and ``pipeline`` overlaps the PIR retrieval
        of each shard's next query with the solve of its current one;
        ``worker_mode="process"`` keeps retrieval in the calling process and
        executes the CPU-bound solve phases on a process pool (the retrieval
        of later queries naturally overlaps the outstanding remote solves).
        An empty batch is legal and returns an empty result (workers=0).

        Cost verification is batched: the pairs are grouped by source and
        each distinct source triggers one (early-terminating) Dijkstra over
        the compiled full network, rather than one search per query.
        """
        pairs = list(pairs)
        if workers < 1:
            raise SchemeError(f"workers must be positive, got {workers}")
        if worker_mode not in WORKER_MODES:
            raise SchemeError(
                f"unknown worker_mode {worker_mode!r}; expected one of {WORKER_MODES}"
            )
        if not pairs:
            return BatchResult(
                scheme_name=self.scheme.name,
                pairs=[],
                results=[],
                true_costs={} if verify_costs else None,
                all_costs_correct=True,
                indistinguishable=True,
                cache_hits=0,
                cache_misses=0,
                wall_seconds=0.0,
                workers=0,
                worker_mode=worker_mode,
                shards=self.shards,
                store_backend=self.store_backend,
                pir_kernel=self.pir_kernel,
                remote=self.serving_addresses is not None,
            )
        workers = min(workers, len(pairs))
        contexts = self._contexts_for(workers)
        hits_before = sum(context.cache.hits for context in contexts)
        misses_before = sum(context.cache.misses for context in contexts)

        started = time.perf_counter()
        indexed: List[_IndexedPair] = list(enumerate(pairs))
        if worker_mode == "process":
            results = self._run_batch_process(contexts, indexed, workers)
        elif workers == 1:
            results = [result for _, result in self._run_shard(contexts[0], indexed, pipeline)]
        else:
            results_by_index: List[Optional[QueryResult]] = [None] * len(pairs)
            with ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-engine"
            ) as pool:
                futures = [
                    pool.submit(self._run_shard, contexts[w], indexed[w::workers], pipeline)
                    for w in range(workers)
                ]
                for future in futures:
                    for index, result in future.result():
                        results_by_index[index] = result
            results = results_by_index
        wall_seconds = time.perf_counter() - started

        views = {result.adversary_view for result in results}

        true_costs: Optional[Dict[QueryPair, float]] = None
        all_costs_correct = True
        if verify_costs:
            true_costs = all_pairs_sample_costs(self.scheme.network, pairs)
            for pair, result in zip(pairs, results):
                truth = true_costs[pair]
                if not math.isclose(
                    result.path.cost, truth, rel_tol=cost_tolerance, abs_tol=1e-6
                ):
                    all_costs_correct = False

        return BatchResult(
            scheme_name=self.scheme.name,
            pairs=pairs,
            results=results,
            true_costs=true_costs,
            all_costs_correct=all_costs_correct,
            indistinguishable=len(views) <= 1,
            cache_hits=sum(context.cache.hits for context in contexts) - hits_before,
            cache_misses=sum(context.cache.misses for context in contexts) - misses_before,
            wall_seconds=wall_seconds,
            workers=workers,
            worker_mode=worker_mode,
            shards=self.shards,
            store_backend=self.store_backend,
            pir_kernel=self.pir_kernel,
            remote=self.serving_addresses is not None,
        )

    # ------------------------------------------------------------------ #
    # worker machinery
    # ------------------------------------------------------------------ #
    def _new_cache(self):
        return LruCache(self.cache_entries) if self.cache_entries else NullCache()

    def _contexts_for(self, workers: int) -> List[_WorkerContext]:
        while len(self._contexts) < workers:
            self._contexts.append(_WorkerContext(self._new_pir(), self._new_cache()))
        return self._contexts[:workers]

    def _new_pir(self) -> UsablePirSimulator:
        scheme = self.scheme
        if self.serving_addresses is not None:
            # imported lazily: the serving client is only needed when the
            # engine actually talks to live shard servers
            from ..serving.client import RemotePirSimulator

            return RemotePirSimulator(
                self.database,
                self.serving_addresses,
                scp=SecureCoprocessor(scheme.spec),
                spec=scheme.spec,
                enforce_limits=scheme.pir.enforce_limits,
                strategy=self.shard_strategy,
                store=self._shard_store,
            )
        if self.shards > 1:
            return ShardedPirSimulator(
                self.database,
                scp=SecureCoprocessor(scheme.spec),
                spec=scheme.spec,
                enforce_limits=scheme.pir.enforce_limits,
                num_shards=self.shards,
                strategy=self.shard_strategy,
                store=self._shard_store,
                xor_kernel=self.pir_kernel,
            )
        return UsablePirSimulator(
            self.database,
            scp=SecureCoprocessor(scheme.spec),
            spec=scheme.spec,
            enforce_limits=scheme.pir.enforce_limits,
            xor_kernel=self.pir_kernel,
        )

    def _run_shard(
        self,
        context: _WorkerContext,
        shard: List[_IndexedPair],
        pipeline: bool,
    ) -> List[Tuple[int, QueryResult]]:
        """Execute one shard; returns ``(batch_index, result)`` pairs."""
        out: List[Tuple[int, QueryResult]] = []
        if pipeline and len(shard) > 1:
            # one retrieval thread per worker: while this thread solves query
            # k, the retrieval thread runs the PIR rounds of query k + 1
            with ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-prefetch"
            ) as prefetcher:
                future = prefetcher.submit(self._prepare, context, shard[0])
                for position, (index, _) in enumerate(shard):
                    prepared = future.result()
                    if position + 1 < len(shard):
                        future = prefetcher.submit(self._prepare, context, shard[position + 1])
                    out.append((index, self._solve(context, prepared)))
        else:
            for item in shard:
                out.append((item[0], self._solve(context, self._prepare(context, item))))
        return out

    def _run_batch_process(
        self,
        contexts: List[_WorkerContext],
        indexed: List[_IndexedPair],
        workers: int,
    ) -> List[QueryResult]:
        """Execute the batch with the solve phases on a process pool.

        Retrieval (the PIR rounds) stays in the calling process — the worker
        contexts' PIR state and decode caches are shared-memory objects — and
        runs in batch order; every prepared query that carries a picklable
        :class:`~repro.schemes.base.RemoteSolve` is shipped to the pool as
        soon as its rounds complete, so later retrievals overlap outstanding
        remote solves.  Queries whose assembled subgraph is already in the
        context's decode cache solve in-process instead (one cache probe
        beats a pickle round trip); remote solves do *not* populate the
        parent cache — the subprocess keeps the assembled graph — so cache
        statistics differ from thread mode even though results are
        identical.  Queries without a remote split (schemes whose default
        ``prepare_query`` runs eagerly) also solve in-process, which is free
        for them — their solve closure only returns the precomputed result.
        """
        results_by_index: List[Optional[QueryResult]] = [None] * len(indexed)
        pending: List[Tuple[int, PreparedQuery, object]] = []
        #: (cache_key, pair) → in-flight future; repeated hot pairs fetch
        #: identical bytes and search identical endpoints, so their solves
        #: are the same deterministic computation — submit it once
        in_flight: Dict[Tuple, object] = {}
        # the engine's persistent pool: workers stay warm across batches
        # instead of paying ProcessPoolExecutor spin-up per run_batch call;
        # before it first grows, publish the shard packs so workers spawned
        # on non-fork platforms attach the machine-wide shared pack instead
        # of repacking their shards
        self._publish_packs()
        pool = self.solve_pool.executor(workers)
        for position, item in enumerate(indexed):
            # mirror the thread path's round-robin shard assignment
            context = contexts[position % workers]
            prepared = self._prepare(context, item)
            remote = prepared.remote
            already_assembled = (
                remote is not None
                and remote.cache_key is not None
                and remote.cache_key in context.cache
            )
            if remote is not None and not already_assembled:
                solve_key = (
                    (remote.cache_key, item[1])
                    if remote.cache_key is not None
                    else None
                )
                future = in_flight.get(solve_key) if solve_key is not None else None
                if future is None:
                    future = pool.submit(remote.function, *remote.args)
                    if solve_key is not None:
                        in_flight[solve_key] = future
                pending.append((item[0], prepared, future))
            else:
                results_by_index[item[0]] = self._solve(context, prepared)
        for index, prepared, future in pending:
            path, solve_seconds = future.result()
            results_by_index[index] = prepared.finish(path, solve_seconds)
        return results_by_index

    def _publish_packs(self) -> None:
        """Publish the engine's shard packs for process workers (idempotent).

        Only meaningful for a sharded store serving through the packed numpy
        kernel: the packs move onto shared memory (the engine keeps
        answering off the same bytes) and the picklable handles are staged
        on the solve pool, whose worker initializer adopts them.  Results
        are unaffected either way — shared and private packs are
        bit-identical — so this is purely a memory/startup optimisation.
        """
        if (
            self._pack_keys
            or self._shard_store is None
            or self.pir_kernel != "numpy"
            or self.serving_addresses is not None
        ):
            return
        handles = self._shard_store.publish_shard_packs(kernel=self.pir_kernel)
        if handles:
            self._pack_keys = list(handles)
            self.solve_pool.set_pack_handles(handles)

    def _prepare(self, context: _WorkerContext, item: _IndexedPair) -> PreparedQuery:
        index, (source, target) = item
        # a per-query RNG keyed by the batch position keeps dummy retrievals
        # deterministic and identical for every worker count
        rng = random.Random(hash((self.scheme.dummy_seed, index)))
        with scheme_files.decode_cache_scope(context.cache):
            with client_state_scope(context.pir, rng):
                return self.scheme.prepare_query(source, target)

    def _solve(self, context: _WorkerContext, prepared: PreparedQuery) -> QueryResult:
        with scheme_files.decode_cache_scope(context.cache):
            return prepared.solve()
