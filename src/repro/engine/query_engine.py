"""The batched query engine: the fast path for executing query workloads.

A :class:`QueryEngine` executes batches of ``(source, target)`` queries
against one scheme under the scheme's single fixed
:class:`~repro.schemes.plan.QueryPlan`.  Privacy is untouched — every query
still runs the full multi-round PIR protocol and is checked against the plan
— but the engine makes the *client side* fast:

* an LRU page cache (see :class:`~repro.engine.cache.LruCache`) shares the
  decoded header and decoded region pages across the queries of a batch, so
  identical page contents are parsed once instead of once per query;
* result verification runs through the array-backed search core
  (:mod:`repro.network.indexed`), grouping the batch by source so each
  distinct source costs one Dijkstra over the compiled network;
* indistinguishability is asserted over the whole batch (every query must
  produce the identical adversary view, Theorem 1).

``repro-spc batch`` on the command line and
:func:`repro.bench.runner.run_workload` (i.e. every figure/table benchmark)
execute through this engine.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import SchemeError
from ..network import NodeId, all_pairs_sample_costs
from ..schemes import files as scheme_files
from ..schemes.base import QueryResult, Scheme
from .cache import LruCache

QueryPair = Tuple[NodeId, NodeId]


@dataclass
class BatchResult:
    """Everything one batch of queries produced."""

    scheme_name: str
    pairs: List[QueryPair]
    results: List[QueryResult]
    #: True shortest-path costs per pair (None when verification was skipped).
    true_costs: Optional[Dict[QueryPair, float]]
    #: Whether every query returned the true shortest-path cost.
    all_costs_correct: bool
    #: Whether every query produced the identical adversary view.
    indistinguishable: bool
    #: Page-cache statistics accumulated during the batch.
    cache_hits: int
    cache_misses: int
    #: Wall-clock seconds the batch took to execute (client machine time,
    #: not the simulated PIR response time).
    wall_seconds: float

    @property
    def num_queries(self) -> int:
        return len(self.results)

    @property
    def mean_response_s(self) -> float:
        """Mean simulated response time per query."""
        if not self.results:
            return 0.0
        return sum(result.response.total_s for result in self.results) / len(self.results)

    @property
    def queries_per_second(self) -> float:
        """Executed queries per wall-clock second (0.0 for an empty batch)."""
        if not self.results or self.wall_seconds <= 0.0:
            return 0.0
        return len(self.results) / self.wall_seconds

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


class QueryEngine:
    """Executes batches of private shortest-path queries against one scheme."""

    def __init__(self, scheme: Scheme, cache_entries: int = 512) -> None:
        self.scheme = scheme
        #: The shared plan every query of every batch runs under.
        self.plan = scheme.plan
        self.page_cache = LruCache(cache_entries)

    def execute(self, source: NodeId, target: NodeId) -> QueryResult:
        """Answer a single query through the engine's page cache."""
        with scheme_files.decode_cache_scope(self.page_cache):
            return self.scheme.query(source, target)

    def run_batch(
        self,
        pairs: Sequence[QueryPair],
        verify_costs: bool = True,
        cost_tolerance: float = 1e-4,
    ) -> BatchResult:
        """Execute every query of ``pairs`` and verify the batch as a whole.

        Cost verification is batched: the pairs are grouped by source and
        each distinct source triggers one (early-terminating) Dijkstra over
        the compiled full network, rather than one search per query.
        """
        pairs = list(pairs)
        if not pairs:
            raise SchemeError("cannot run an empty batch")
        cache = self.page_cache
        hits_before, misses_before = cache.hits, cache.misses

        started = time.perf_counter()
        with scheme_files.decode_cache_scope(cache):
            results = [self.scheme.query(source, target) for source, target in pairs]
        wall_seconds = time.perf_counter() - started

        views = {result.adversary_view for result in results}

        true_costs: Optional[Dict[QueryPair, float]] = None
        all_costs_correct = True
        if verify_costs:
            true_costs = all_pairs_sample_costs(self.scheme.network, pairs)
            for pair, result in zip(pairs, results):
                truth = true_costs[pair]
                if not math.isclose(
                    result.path.cost, truth, rel_tol=cost_tolerance, abs_tol=1e-6
                ):
                    all_costs_correct = False

        return BatchResult(
            scheme_name=self.scheme.name,
            pairs=pairs,
            results=results,
            true_costs=true_costs,
            all_costs_correct=all_costs_correct,
            indistinguishable=len(views) <= 1,
            cache_hits=cache.hits - hits_before,
            cache_misses=cache.misses - misses_before,
            wall_seconds=wall_seconds,
        )
