"""The adversary model and indistinguishability checks (Theorem 1).

The LBS is *curious but not malicious*: it executes page-access routines
correctly but tries to learn the clients' queries.  All it can observe during
a query is (i) that the header was downloaded and (ii) a sequence of PIR page
accesses, each tagged only with the file that was touched.  This module turns
Theorem 1 into executable checks:

* two queries are indistinguishable when their adversary views are identical;
* a scheme is *plan-conforming* when every query's view equals the canonical
  view derived from its public query plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from ..pir import AdversaryView
from ..schemes.base import QueryResult
from ..schemes.plan import QueryPlan


@dataclass
class IndistinguishabilityReport:
    """Outcome of comparing the adversary views of a set of queries."""

    num_queries: int
    all_identical: bool
    distinct_views: int
    matches_plan: bool

    @property
    def leaks_nothing(self) -> bool:
        """True when no query can be told apart from any other (Theorem 1)."""
        return self.all_identical and self.matches_plan


def views_identical(views: Sequence[AdversaryView]) -> bool:
    """True when every view in the sequence is equal to the first."""
    if not views:
        return True
    first = views[0]
    return all(view == first for view in views[1:])


def check_indistinguishability(
    results: Iterable[QueryResult], plan: QueryPlan
) -> IndistinguishabilityReport:
    """Compare the adversary views of executed queries against each other and the plan."""
    views: List[AdversaryView] = [result.adversary_view for result in results]
    distinct = len({view for view in views})
    expected = plan.expected_adversary_view()
    matches_plan = all(view == expected for view in views)
    return IndistinguishabilityReport(
        num_queries=len(views),
        all_identical=distinct <= 1,
        distinct_views=distinct,
        matches_plan=matches_plan,
    )


def adversary_transcript(view: AdversaryView) -> List[Tuple[int, str, str]]:
    """A human-readable rendition of what the LBS observed."""
    return [(event.round_number, event.kind, event.file_name) for event in view.events]
