"""Inference attacks an LBS could mount against *weaker* designs.

Theorem 1 rests on two design rules: every page is fetched through PIR, and
every query follows the same fixed plan.  This module implements the attacks
that become possible when either rule is dropped, so tests and examples can
demonstrate — rather than assert — why the rules are necessary:

* the *volume attack* exploits per-query differences in the number of pages
  fetched from each file (what an unpadded scheme would expose).  Observed
  volumes correlate strongly with the source-destination distance, so the LBS
  learns whether a trip is short or long and can distinguish re-executions of
  different queries;
* the *frequency attack* targets space-transformation designs (Section 2.1):
  even though items are pseudonymised, their access frequencies remain, and
  matching the observed frequency ranking against publicly known popularity
  re-identifies a large fraction of items.

Both attacks produce quantitative reports, and both collapse to "no
information" when run against the padded, PIR-based schemes of this package.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import ReproError
from ..network import NodeId, RoadNetwork
from ..partition import Partitioning
from ..precompute import BorderProducts
from ..schemes.base import QueryResult

#: One adversary-side observation: pages fetched per file for a single query.
VolumeObservation = Tuple[Tuple[str, int], ...]


def observation_from_counts(counts: Mapping[str, int]) -> VolumeObservation:
    """Canonicalise a per-file page-count mapping into a hashable observation."""
    return tuple(sorted((str(name), int(value)) for name, value in counts.items()))


def observations_from_results(results: Iterable[QueryResult]) -> List[VolumeObservation]:
    """Adversary-side volume observations of executed (padded) queries."""
    return [observation_from_counts(result.pages_per_file) for result in results]


def simulate_unpadded_volumes(
    products: BorderProducts,
    partitioning: Partitioning,
    network: RoadNetwork,
    queries: Sequence[Tuple[NodeId, NodeId]],
    data_file: str = "data",
    index_file: str = "index",
) -> List[VolumeObservation]:
    """What a CI-style scheme *without* dummy padding would expose per query.

    Without padding, the fourth round fetches exactly ``|S_st| + 2`` region
    pages, so the per-query volume varies with the region set cardinality of
    the source/destination pair — precisely the leakage the fixed query plan
    suppresses.
    """
    observations: List[VolumeObservation] = []
    for source, target in queries:
        source_node = network.node(source)
        target_node = network.node(target)
        source_region = partitioning.region_of_point(source_node.x, source_node.y)
        target_region = partitioning.region_of_point(target_node.x, target_node.y)
        regions = products.region_set(source_region, target_region)
        observations.append(
            observation_from_counts(
                {"lookup": 1, index_file: 1, data_file: len(regions) + 2}
            )
        )
    return observations


# ---------------------------------------------------------------------- #
# volume attack
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class VolumeAttackReport:
    """Outcome of the volume (access-count) attack."""

    num_queries: int
    distinct_observations: int
    #: Shannon entropy (bits) of the observation distribution.
    observation_entropy_bits: float
    #: Fraction of query pairs the adversary can tell apart.
    distinguishable_pair_fraction: float
    #: Rank correlation between total fetched pages and query distance
    #: (``None`` when distances were not supplied or are degenerate).
    distance_rank_correlation: Optional[float]

    @property
    def leaks_information(self) -> bool:
        """True when at least two queries produced different observations."""
        return self.distinct_observations > 1


def _entropy_bits(observations: Sequence[VolumeObservation]) -> float:
    counts: Dict[VolumeObservation, int] = {}
    for observation in observations:
        counts[observation] = counts.get(observation, 0) + 1
    total = len(observations)
    entropy = 0.0
    for count in counts.values():
        probability = count / total
        entropy -= probability * math.log2(probability)
    return entropy


def _distinguishable_fraction(observations: Sequence[VolumeObservation]) -> float:
    total_pairs = 0
    distinguishable = 0
    for first_index in range(len(observations)):
        for second_index in range(first_index + 1, len(observations)):
            total_pairs += 1
            if observations[first_index] != observations[second_index]:
                distinguishable += 1
    if total_pairs == 0:
        return 0.0
    return distinguishable / total_pairs


def _ranks(values: Sequence[float]) -> List[float]:
    order = sorted(range(len(values)), key=lambda index: values[index])
    ranks = [0.0] * len(values)
    position = 0
    while position < len(order):
        tie_end = position
        while (
            tie_end + 1 < len(order)
            and values[order[tie_end + 1]] == values[order[position]]
        ):
            tie_end += 1
        mean_rank = (position + tie_end) / 2.0
        for tied in range(position, tie_end + 1):
            ranks[order[tied]] = mean_rank
        position = tie_end + 1
    return ranks


def rank_correlation(first: Sequence[float], second: Sequence[float]) -> Optional[float]:
    """Spearman rank correlation; ``None`` when either sequence is constant."""
    if len(first) != len(second):
        raise ReproError("rank correlation needs sequences of equal length")
    if len(first) < 2:
        return None
    ranks_a = _ranks(first)
    ranks_b = _ranks(second)
    mean_a = sum(ranks_a) / len(ranks_a)
    mean_b = sum(ranks_b) / len(ranks_b)
    numerator = sum((a - mean_a) * (b - mean_b) for a, b in zip(ranks_a, ranks_b))
    var_a = sum((a - mean_a) ** 2 for a in ranks_a)
    var_b = sum((b - mean_b) ** 2 for b in ranks_b)
    if var_a == 0 or var_b == 0:
        return None
    return numerator / math.sqrt(var_a * var_b)


def volume_attack(
    observations: Sequence[VolumeObservation],
    distances: Optional[Sequence[float]] = None,
) -> VolumeAttackReport:
    """Mount the volume attack on a set of adversary-side observations."""
    if not observations:
        raise ReproError("the volume attack needs at least one observation")
    correlation: Optional[float] = None
    if distances is not None:
        if len(distances) != len(observations):
            raise ReproError("one distance per observation is required")
        totals = [float(sum(count for _, count in observation)) for observation in observations]
        correlation = rank_correlation(totals, list(distances))
    return VolumeAttackReport(
        num_queries=len(observations),
        distinct_observations=len(set(observations)),
        observation_entropy_bits=_entropy_bits(observations),
        distinguishable_pair_fraction=_distinguishable_fraction(observations),
        distance_rank_correlation=correlation,
    )


# ---------------------------------------------------------------------- #
# frequency attack (against space-transformation designs)
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class FrequencyAttackReport:
    """Outcome of matching observed access frequencies against public popularity."""

    num_items: int
    correctly_identified: int

    @property
    def identification_rate(self) -> float:
        if self.num_items == 0:
            return 0.0
        return self.correctly_identified / self.num_items


def frequency_attack(
    observed_access_counts: Mapping[object, int],
    public_popularity: Mapping[object, int],
) -> FrequencyAttackReport:
    """Re-identify pseudonymised items by matching frequency ranks.

    ``observed_access_counts`` maps *pseudonymous* item identifiers to how
    often the server saw them accessed; ``public_popularity`` maps the *true*
    item identifiers to their publicly known popularity.  The attack sorts
    both sides by frequency and pairs them off rank by rank; an item counts as
    identified when its pseudonym is paired with its true identity.  The
    mapping between pseudonyms and true items is taken to be the identity
    (the caller relabels if needed), which keeps the scoring transparent.
    """
    if set(observed_access_counts) != set(public_popularity):
        raise ReproError("observed and public item sets must coincide for scoring")
    observed_ranked = sorted(
        observed_access_counts, key=lambda item: (-observed_access_counts[item], repr(item))
    )
    public_ranked = sorted(
        public_popularity, key=lambda item: (-public_popularity[item], repr(item))
    )
    correct = sum(
        1 for observed, truth in zip(observed_ranked, public_ranked) if observed == truth
    )
    return FrequencyAttackReport(num_items=len(observed_ranked), correctly_identified=correct)
