"""Privacy model: the curious LBS adversary, indistinguishability checks and attacks."""

from .adversary import (
    IndistinguishabilityReport,
    adversary_transcript,
    check_indistinguishability,
    views_identical,
)
from .attacks import (
    FrequencyAttackReport,
    VolumeAttackReport,
    frequency_attack,
    observation_from_counts,
    observations_from_results,
    rank_correlation,
    simulate_unpadded_volumes,
    volume_attack,
)

__all__ = [
    "FrequencyAttackReport",
    "IndistinguishabilityReport",
    "VolumeAttackReport",
    "adversary_transcript",
    "check_indistinguishability",
    "frequency_attack",
    "observation_from_counts",
    "observations_from_results",
    "rank_correlation",
    "simulate_unpadded_volumes",
    "views_identical",
    "volume_attack",
]
