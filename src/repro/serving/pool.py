"""A persistent process-worker pool for the engine's remote solve phases.

Before this module existed, every ``run_batch(worker_mode="process")``
built a fresh ``ProcessPoolExecutor`` and tore it down with the batch, so
each batch paid full worker spin-up — process spawn plus, on spawn-style
platforms, a cold import of the whole package in every worker — and, where
the engine serves through packed XOR kernels, a fork-inherited copy of the
parent's kernel packs was thrown away per batch.  A :class:`SolvePool`
outlives batches: the executor is created once, workers pre-import the
solve-phase modules exactly once (``initializer``), and on fork platforms
the children inherit the parent's packed shard kernels copy-on-write —
once per pool, not once per batch.

The pool only ever *grows*: asking for more workers than the current
executor holds replaces it with a larger one (counted in :attr:`starts`,
which the warm-pool microbench floors at one start across consecutive
batches).  Results are unaffected by pool reuse or sizing — the solve
phase is a deterministic function of the shipped bytes (invariant I2).

A finalizer shuts the executor down when the pool is garbage collected,
so short-lived engines (tests build hundreds) do not leak worker
processes; long-lived callers use the context-manager form or
:meth:`close` for deterministic teardown.
"""

from __future__ import annotations

import threading
import weakref
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from ..exceptions import SchemeError
from ..pir.kernels import SharedPackHandle


def _warm_worker(
    pack_handles: Optional[Mapping[Tuple[object, ...], SharedPackHandle]] = None,
) -> None:
    """Pre-import the solve-phase modules so a worker's first task is warm.

    ``pack_handles`` (published shared-pack handles, keyed by
    :func:`~repro.pir.kernels.shared_kernel_key`) are adopted into the
    worker's registry, so any ``shared_kernel`` lookup in this worker
    attaches the machine-wide pack instead of rebuilding it.  Adoption is
    best-effort: a handle whose owner already unlinked simply stays
    unadopted and the worker builds privately, which is always correct
    (shared and private packs are bit-identical by construction).
    """
    import repro.network  # noqa: F401
    import repro.schemes  # noqa: F401

    if pack_handles:
        from ..pir.kernels import shared_pack_registry

        for key, handle in pack_handles.items():
            try:
                shared_pack_registry().adopt({key: handle})
            except Exception:
                pass  # stale handle: fall back to a private rebuild


def _shutdown_executor(executor: ProcessPoolExecutor) -> None:
    executor.shutdown(wait=False, cancel_futures=True)


class SolvePool:
    """A reusable, lazily grown process pool shared across engine batches."""

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise SchemeError(
                f"max_workers must be positive, got {max_workers}"
            )
        #: Optional hard cap on the executor size.
        self.max_workers = max_workers
        #: Executors created over this pool's lifetime (1 == fully warm).
        self.starts = 0
        self._executor: Optional[ProcessPoolExecutor] = None
        self._size = 0
        self._lock = threading.Lock()
        self._finalizer: Optional[weakref.finalize] = None
        self._closed = False
        self._pack_handles: Dict[Tuple[object, ...], SharedPackHandle] = {}

    def set_pack_handles(
        self, handles: Mapping[Tuple[object, ...], SharedPackHandle]
    ) -> None:
        """Shared-pack handles future workers adopt at initialisation.

        Handles merge (an engine can publish more shards later); they reach
        workers through the executor ``initializer``, so only executors
        started *after* this call see new handles — the engine publishes
        before its first process batch grows the pool.
        """
        with self._lock:
            self._pack_handles.update(handles)

    @property
    def size(self) -> int:
        """Workers the current executor was created with (0 = not started)."""
        return self._size

    def executor(self, workers: int) -> ProcessPoolExecutor:
        """The shared executor, grown to at least ``workers`` workers.

        Growing replaces the executor (the old one finishes its outstanding
        work and shuts down); shrinking never happens — a warm pool larger
        than a batch needs simply leaves workers idle.
        """
        if workers < 1:
            raise SchemeError(f"workers must be positive, got {workers}")
        if self.max_workers is not None:
            workers = min(workers, self.max_workers)
        with self._lock:
            if self._closed:
                raise SchemeError("solve pool is closed")
            if self._executor is None or self._size < workers:
                previous = self._executor
                if self._finalizer is not None:
                    self._finalizer.detach()
                if previous is not None:
                    previous.shutdown(wait=True)
                size = max(workers, self._size)
                self._executor = ProcessPoolExecutor(
                    max_workers=size,
                    initializer=_warm_worker,
                    initargs=(dict(self._pack_handles),),
                )
                self._size = size
                self.starts += 1
                self._finalizer = weakref.finalize(
                    self, _shutdown_executor, self._executor
                )
            return self._executor

    def submit(
        self, workers: int, function: Callable[..., Any], /, *args: Any
    ) -> "Future[Any]":
        """Submit one task onto the pool sized for ``workers``."""
        return self.executor(workers).submit(function, *args)

    def close(self, wait: bool = True) -> None:
        """Shut the workers down; the pool cannot be reused afterwards."""
        with self._lock:
            self._closed = True
            executor, self._executor = self._executor, None
            if self._finalizer is not None:
                self._finalizer.detach()
                self._finalizer = None
        if executor is not None:
            executor.shutdown(wait=wait)

    def __enter__(self) -> "SolvePool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
