"""The PIR shard service: TCP serving, remote clients, and the worker pool.

Server side (:mod:`repro.serving.server`): one asyncio :class:`ShardServer`
per database shard answering subset-mask batches through the packed
:class:`~repro.pir.kernels.ServerKernel`, with request coalescing, bounded
admission (``BUSY`` backpressure) and graceful drain;
:class:`ShardCluster` boots one server per shard.  Client side
(:mod:`repro.serving.client`): :class:`RemotePirShard` /
:class:`RemotePirSimulator` present the in-process simulator surface over
pooled connections, bit-identical to local serving (invariant I2).  Engine
side (:mod:`repro.serving.pool`): the persistent :class:`SolvePool`
process pool the query engine reuses across batches.
:mod:`repro.serving.loadgen` is the open-loop load harness over all of it.
"""

from .client import ConnectionPool, RemotePirShard, RemotePirSimulator, ShardConnection
from .loadgen import LoadReport, run_loadgen, run_loadgen_multiproc
from .pool import SolvePool
from .server import ShardCluster, ShardServer
from .wire import (
    FrameDecoder,
    RemoteServerError,
    ServerBusy,
    ShardInfo,
    WireError,
)

__all__ = [
    "ConnectionPool",
    "FrameDecoder",
    "LoadReport",
    "RemotePirShard",
    "RemotePirSimulator",
    "RemoteServerError",
    "ServerBusy",
    "ShardCluster",
    "ShardConnection",
    "ShardInfo",
    "ShardServer",
    "SolvePool",
    "WireError",
    "run_loadgen",
    "run_loadgen_multiproc",
]
