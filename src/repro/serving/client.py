"""Client plumbing for the PIR shard service: the engine-facing remote layer.

:class:`RemotePirShard` speaks the :mod:`repro.serving.wire` protocol to one
:class:`~repro.serving.server.ShardServer` over a small pool of persistent
TCP connections, presenting exactly the surface of the in-process
:class:`~repro.pir.sharded.PirShard` connection.  The two-server XOR client
runs *here*: masks are drawn from the same deterministically seeded RNG
stream as in-process XOR serving (``random_subset_masks`` over the shard's
block space), both servers' masks ship in one request, and the answers are
XOR-combined client-side — so the returned pages, the adversary-view logs
and the RNG consumption are bit-identical to local serving, and the wire
carries only masks, never page numbers.

:class:`RemotePirSimulator` is the drop-in
:class:`~repro.pir.sharded.ShardedPirSimulator` whose shard connections are
remote: the query engine builds one per worker context when constructed
with ``serving=...``, and every result, trace and simulated cost matches
in-process serving exactly (property-tested; invariant I2).

``BUSY`` responses (the server's admission control) are retried with a
short backoff — backpressure slows a client down but never changes results.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from ..costmodel import DEFAULT_SPEC, SystemSpec
from ..exceptions import PirError
from ..pir.batch import mask_indices, random_subset_masks
from ..pir.sharded import ShardedPageStore, ShardedPirSimulator
from ..pir.scp import SecureCoprocessor
from ..pir.xor_pir import xor_bytes
from ..storage import Database
from . import wire

#: How often a BUSY answer is retried before giving up.
DEFAULT_BUSY_RETRIES = 200
#: Pause between BUSY retries (seconds).
DEFAULT_BUSY_BACKOFF_S = 0.002


class ShardConnection:
    """One persistent blocking connection to a shard server."""

    def __init__(self, address: Tuple[str, int], timeout: float = 30.0) -> None:
        self.address = (address[0], int(address[1]))
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None

    def _ensure(self) -> socket.socket:
        if self._sock is None:
            try:
                self._sock = socket.create_connection(
                    self.address, timeout=self.timeout
                )
                self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError as exc:
                raise PirError(
                    f"cannot connect to shard server at "
                    f"{self.address[0]}:{self.address[1]}: {exc}"
                ) from exc
        return self._sock

    def request(self, payload: bytes) -> bytes:
        """One framed request/response round trip (in-order protocol)."""
        sock = self._ensure()
        try:
            sock.sendall(wire.encode_frame(payload))
            header = self._recv_exact(sock, wire.HEADER_SIZE)
            length = wire.decode_frame_length(header)
            return self._recv_exact(sock, length)
        except (OSError, wire.WireError):
            self.close()
            raise

    @staticmethod
    def _recv_exact(sock: socket.socket, count: int) -> bytes:
        chunks = bytearray()
        while len(chunks) < count:
            chunk = sock.recv(count - len(chunks))
            if not chunk:
                raise PirError("shard server closed the connection mid-response")
            chunks.extend(chunk)
        return bytes(chunks)

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None


class ConnectionPool:
    """A bounded pool of reusable connections to one shard server."""

    def __init__(
        self, address: Tuple[str, int], size: int = 2, timeout: float = 30.0
    ) -> None:
        if size < 1:
            raise PirError(f"connection pool size must be positive, got {size}")
        self.address = address
        self.size = size
        self.timeout = timeout
        self._idle: List[ShardConnection] = []
        self._lock = threading.Lock()

    @contextmanager
    def connection(self) -> Iterator[ShardConnection]:
        with self._lock:
            conn = self._idle.pop() if self._idle else None
        if conn is None:
            conn = ShardConnection(self.address, timeout=self.timeout)
        try:
            yield conn
        except BaseException:
            conn.close()
            raise
        finally:
            with self._lock:
                if len(self._idle) < self.size:
                    self._idle.append(conn)
                    conn = None
        if conn is not None:
            conn.close()

    def request(self, payload: bytes) -> bytes:
        with self.connection() as conn:
            return conn.request(payload)

    def close(self) -> None:
        with self._lock:
            idle, self._idle = self._idle, []
        for conn in idle:
            conn.close()


class RemotePirShard:
    """A :class:`~repro.pir.sharded.PirShard`-shaped connection to a server.

    Page bytes come back from the remote shard's packed kernel; validation
    and the (file, shard, subset) adversary log run client-side against the
    shared :class:`~repro.pir.sharded.ShardedPageStore` view, exactly as the
    in-process XOR-serving shard connection does.
    """

    __slots__ = (
        "shard_id",
        "pages_served",
        "busy_retries",
        "busy_backoff_s",
        "_store",
        "_pool",
        "_rng",
        "_log",
    )

    def __init__(
        self,
        shard_id: int,
        store: ShardedPageStore,
        address: Tuple[str, int],
        rng: random.Random,
        log: Optional[Callable[[Tuple[str, int, frozenset]], None]] = None,
        pool: Optional[ConnectionPool] = None,
        pool_size: int = 2,
        timeout: float = 30.0,
        busy_retries: int = DEFAULT_BUSY_RETRIES,
        busy_backoff_s: float = DEFAULT_BUSY_BACKOFF_S,
    ) -> None:
        self.shard_id = shard_id
        self.pages_served = 0
        self.busy_retries = busy_retries
        self.busy_backoff_s = busy_backoff_s
        self._store = store
        self._pool = pool or ConnectionPool(address, size=pool_size, timeout=timeout)
        self._rng = rng
        self._log = log

    def hello(self) -> wire.ShardInfo:
        """The remote server's self-description (layout sanity checks)."""
        return wire.decode_hello_response(self._pool.request(wire.encode_hello_request()))

    def num_pages(self, file_name: str) -> int:
        return self._store.shard_num_pages(self.shard_id, file_name)

    def read(self, file_name: str, local_page: int) -> bytes:
        page = self._serve(file_name, [local_page])[0]
        self.pages_served += 1
        return page

    def read_many(self, file_name: str, local_pages: Sequence[int]) -> List[bytes]:
        pages = self._serve(file_name, list(local_pages))
        self.pages_served += len(pages)
        return pages

    def _serve(self, file_name: str, local_pages: List[int]) -> List[bytes]:
        """Two-server XOR retrieval with both answers served remotely."""
        if not local_pages:
            return []
        self._store.check_local(self.shard_id, file_name, local_pages)
        num_blocks = self._store.shard_num_pages(self.shard_id, file_name)
        masks_a = random_subset_masks(self._rng, num_blocks, len(local_pages))
        masks_b = [mask ^ (1 << index) for mask, index in zip(masks_a, local_pages)]
        if self._log is not None:
            for mask_a, mask_b in zip(masks_a, masks_b):
                self._log((file_name, self.shard_id, frozenset(mask_indices(mask_a))))
                self._log((file_name, self.shard_id, frozenset(mask_indices(mask_b))))
        payload = wire.encode_answer_request(file_name, masks_a + masks_b)
        answers = self._answers(payload)
        if len(answers) != 2 * len(local_pages):
            raise PirError(
                f"shard server answered {len(answers)} blocks for "
                f"{2 * len(local_pages)} masks"
            )
        half = len(local_pages)
        return [
            xor_bytes(answer_a, answer_b)
            for answer_a, answer_b in zip(answers[:half], answers[half:])
        ]

    def _answers(self, payload: bytes) -> List[bytes]:
        """One ANSWER round trip, absorbing BUSY backpressure with retries."""
        attempts = 0
        while True:
            try:
                return wire.decode_answer_response(self._pool.request(payload))
            except wire.ServerBusy:
                attempts += 1
                if attempts > self.busy_retries:
                    raise
                time.sleep(self.busy_backoff_s)

    def close(self) -> None:
        self._pool.close()


class RemotePirSimulator(ShardedPirSimulator):
    """A :class:`~repro.pir.sharded.ShardedPirSimulator` served over TCP.

    ``addresses`` lists one shard server per shard, in shard order (a
    :class:`~repro.serving.server.ShardCluster`'s ``addresses`` fits
    directly).  Validation, plan conformance, traces and the simulated cost
    model all run client-side against the logical database, exactly as in
    process; only the XOR answering happens on the servers.  With the same
    ``kernel_seed``, results *and* adversary-view logs are bit-identical to
    in-process XOR serving (property-tested).

    ``check_layout`` performs a HELLO round against every server at
    construction and fails loudly when a server's shard layout (shard count,
    strategy, per-file slice sizes or page sizes) disagrees with the local
    view — a mismatched deployment must not silently serve wrong bytes.
    """

    def __init__(
        self,
        database: Database,
        addresses: Sequence[Tuple[str, int]],
        scp: Optional[SecureCoprocessor] = None,
        spec: SystemSpec = DEFAULT_SPEC,
        enforce_limits: bool = True,
        strategy: str = "round-robin",
        store: Optional[ShardedPageStore] = None,
        log_queries: bool = False,
        kernel_seed: int = 0,
        pool_size: int = 2,
        timeout: float = 30.0,
        check_layout: bool = True,
    ) -> None:
        addresses = [(host, int(port)) for host, port in addresses]
        if not addresses:
            raise PirError("remote serving needs at least one shard address")
        super().__init__(
            database,
            scp=scp,
            spec=spec,
            enforce_limits=enforce_limits,
            num_shards=len(addresses),
            strategy=strategy,
            store=store,
            xor_kernel=None,
            log_queries=log_queries,
            kernel_seed=kernel_seed,
        )
        self.addresses = addresses
        log = self.queries_seen.append if log_queries else None
        #: Remote shard connections drawing the identical per-shard RNG
        #: streams as in-process XOR serving (bit-identical adversary views).
        self.shards = [
            RemotePirShard(
                shard_id,
                self.store,
                address,
                rng=random.Random(kernel_seed * 0x9E3779B1 + shard_id),
                log=log,
                pool_size=pool_size,
                timeout=timeout,
            )
            for shard_id, address in enumerate(addresses)
        ]
        if check_layout:
            self.check_layout()

    def check_layout(self) -> None:
        """HELLO every server and verify it matches the local shard view."""
        for shard in self.shards:
            info = shard.hello()
            if info.num_shards != self.store.num_shards:
                raise PirError(
                    f"shard server {shard.shard_id} serves a {info.num_shards}-shard "
                    f"layout; the client expects {self.store.num_shards}"
                )
            if info.shard_id != shard.shard_id:
                raise PirError(
                    f"address {shard.shard_id} answered as shard {info.shard_id}"
                )
            if info.strategy != self.store.strategy:
                raise PirError(
                    f"shard server {shard.shard_id} shards by {info.strategy!r}; "
                    f"the client expects {self.store.strategy!r}"
                )
            local_files = {
                name: (
                    self.store.shard_num_pages(shard.shard_id, name),
                    self.store.page_size(name),
                )
                for name in self.store.maps
                if self.store.shard_num_pages(shard.shard_id, name) > 0
            }
            remote_files = {
                file_info.name: (file_info.num_pages, file_info.page_size)
                for file_info in info.files
            }
            if local_files != remote_files:
                raise PirError(
                    f"shard server {shard.shard_id} holds a different page "
                    "layout than the local database view"
                )

    def close(self) -> None:
        """Close every pooled connection (the servers keep running)."""
        for shard in self.shards:
            shard.close()
