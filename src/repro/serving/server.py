"""The asyncio PIR shard service: one TCP server per database shard.

A :class:`ShardServer` owns one shard of a :class:`~repro.pir.sharded.
ShardedPageStore` and answers subset-mask batches through the shard's
packed :class:`~repro.pir.kernels.ServerKernel` (the vectorized numpy pack
where numpy exists, the big-int fold otherwise — I3 holds on the wire just
as it does in process).  The protocol is the length-prefixed framing of
:mod:`repro.serving.wire`; the server never sees logical page numbers,
only masks.

Three serving behaviours matter beyond "answer the masks":

* **request coalescing** — masks arriving within a small window (or until a
  batch-size cap) are flushed through one ``answer_many`` call per file, so
  the packed kernel runs at the batch sizes its grouped tables are built
  for even when each client sends a single retrieval per request;
* **admission control** — the in-flight mask queue is bounded; a request
  that would overflow it is answered ``BUSY`` immediately (explicit
  backpressure instead of unbounded buffering);
* **graceful drain** — ``stop()`` stops accepting connections, flushes
  every pending batch, waits until each accepted request has been
  answered, then closes the remaining connections.

The server runs its event loop on a background thread, so synchronous
clients (the engine, the tests, the CLI) can boot and tear it down
in-process; a real deployment would run one process per shard.
:class:`ShardCluster` boots one server per shard over a shared store view.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import PirError
from ..pir import resolve_kernel, shared_pack_registry
from ..pir.batch import mask_indices
from ..pir.kernels import ServerKernel
from ..pir.sharded import ShardedPageStore
from ..storage import Database
from . import wire

#: Seconds a freshly queued mask batch may wait for companions to coalesce.
DEFAULT_COALESCE_WINDOW_S = 0.002
#: Masks that trigger an immediate flush regardless of the window.
DEFAULT_MAX_BATCH_MASKS = 512
#: Bound on masks admitted but not yet answered (admission control).
DEFAULT_MAX_PENDING_MASKS = 8192
#: Kernel threads each server answers with (1 = the pre-existing behaviour).
DEFAULT_ANSWER_THREADS = 1
#: Minimum masks worth a kernel sub-call when splitting a coalesced flush —
#: tiny chunks pay more in scheduling than the extra core returns.
MIN_SPLIT_MASKS = 64


class ShardServer:
    """Serves one shard's mask batches over TCP with coalescing and drain."""

    def __init__(
        self,
        store: ShardedPageStore,
        shard_id: int,
        kernel: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        coalesce_window_s: float = DEFAULT_COALESCE_WINDOW_S,
        max_batch_masks: int = DEFAULT_MAX_BATCH_MASKS,
        max_pending_masks: int = DEFAULT_MAX_PENDING_MASKS,
        max_frame_bytes: int = wire.MAX_FRAME_BYTES,
        log_queries: bool = False,
        answer_threads: int = DEFAULT_ANSWER_THREADS,
    ) -> None:
        if shard_id < 0 or shard_id >= store.num_shards:
            raise PirError(f"shard {shard_id} out of range for the supplied store")
        if answer_threads < 1:
            raise PirError(f"answer_threads must be positive, got {answer_threads}")
        self._store = store
        self.shard_id = shard_id
        self.kernel = resolve_kernel(kernel)
        self._host = host
        self._port = port
        self.coalesce_window_s = coalesce_window_s
        self.max_batch_masks = max_batch_masks
        self.max_pending_masks = max_pending_masks
        #: Kernel threads this server splits large coalesced flushes across.
        #: numpy releases the GIL inside the bitwise kernels, so sub-calls
        #: run on real cores; answers are concatenated in request order and
        #: bit-identical for any thread count (each mask's answer is an
        #: independent function of the pack).
        self.answer_threads = answer_threads
        self._answer_pool: Optional[ThreadPoolExecutor] = None
        self._max_frame_bytes = max_frame_bytes
        #: Server-side adversary view, opt-in exactly like the simulators:
        #: ``(file name, shard id, subset)`` per answered mask.
        self.log_queries = log_queries
        self.queries_seen: List[Tuple[str, int, frozenset]] = []
        #: Serving statistics (written only on the loop thread).
        self.masks_answered = 0
        self.flushes = 0
        self.busy_rejections = 0
        self.requests_served = 0
        self.largest_flush = 0
        self.kernel_subcalls = 0
        self.address: Optional[Tuple[str, int]] = None
        # loop-thread state
        self._pending: Dict[str, List[Tuple[Sequence[int], asyncio.Future]]] = {}
        self._pending_masks = 0
        self._flush_handles: Dict[str, asyncio.TimerHandle] = {}
        self._outstanding = 0
        self._draining = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._idle_event: Optional[asyncio.Event] = None
        self._handler_tasks: set = set()
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._boot_error: Optional[BaseException] = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> Tuple[str, int]:
        """Boot the server on a background thread; returns ``(host, port)``."""
        if self._thread is not None:
            if self.address is None:
                raise PirError("shard server failed to boot")
            return self.address
        self._thread = threading.Thread(
            target=self._run_loop,
            name=f"repro-shard-server-{self.shard_id}",
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise PirError("shard server did not come up within 30s")
        if self._boot_error is not None:
            raise PirError(f"shard server failed to boot: {self._boot_error}")
        assert self.address is not None
        return self.address

    def stop(self, timeout: float = 30.0) -> None:
        """Drain gracefully: answer everything admitted, then shut down."""
        thread = self._thread
        if thread is None or not thread.is_alive():
            return
        loop = self._loop
        if loop is not None and self._stop_event is not None:
            loop.call_soon_threadsafe(self._stop_event.set)
        thread.join(timeout=timeout)

    def __enter__(self) -> "ShardServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def stats(self) -> Dict[str, int]:
        return {
            "requests_served": self.requests_served,
            "masks_answered": self.masks_answered,
            "flushes": self.flushes,
            "largest_flush": self.largest_flush,
            "busy_rejections": self.busy_rejections,
            "kernel_subcalls": self.kernel_subcalls,
        }

    def info(self) -> wire.ShardInfo:
        files = tuple(
            wire.FileInfo(
                name=name,
                num_pages=self._store.shard_num_pages(self.shard_id, name),
                page_size=self._store.page_size(name),
            )
            for name in sorted(self._store.maps)
            if self._store.shard_num_pages(self.shard_id, name) > 0
        )
        return wire.ShardInfo(
            shard_id=self.shard_id,
            num_shards=self._store.num_shards,
            strategy=self._store.strategy,
            kernel=self.kernel,
            files=files,
        )

    # ------------------------------------------------------------------ #
    # event loop internals
    # ------------------------------------------------------------------ #
    def _run_loop(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # boot failures surface in start()
            self._boot_error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._idle_event = asyncio.Event()
        self._idle_event.set()
        self._answer_pool = ThreadPoolExecutor(
            max_workers=self.answer_threads,
            thread_name_prefix=f"repro-shard-answer-{self.shard_id}",
        )
        server = await asyncio.start_server(self._handle, self._host, self._port)
        sockname = server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        self._ready.set()
        await self._stop_event.wait()
        # drain: no new connections, flush and answer what was admitted
        self._draining = True
        server.close()
        await server.wait_closed()
        for file_name in list(self._pending):
            await self._flush(file_name)
        if self._outstanding:
            try:
                await asyncio.wait_for(self._idle_event.wait(), timeout=10)
            except asyncio.TimeoutError:
                pass
        for task in list(self._handler_tasks):
            task.cancel()
        if self._handler_tasks:
            await asyncio.gather(*self._handler_tasks, return_exceptions=True)
        pool, self._answer_pool = self._answer_pool, None
        if pool is not None:
            pool.shutdown(wait=False)

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
            task.add_done_callback(self._handler_tasks.discard)
        responses: asyncio.Queue = asyncio.Queue()
        writer_task = asyncio.ensure_future(self._write_responses(responses, writer))
        try:
            while True:
                try:
                    header = await reader.readexactly(wire.HEADER_SIZE)
                    length = wire.decode_frame_length(header, self._max_frame_bytes)
                    payload = await reader.readexactly(length)
                except wire.WireError:
                    responses.put_nowait(
                        self._immediate(wire.encode_error("frame too large"))
                    )
                    break
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    break
                responses.put_nowait(self._dispatch(payload))
        except asyncio.CancelledError:
            pass
        finally:
            responses.put_nowait(None)
            try:
                await asyncio.shield(writer_task)
            except asyncio.CancelledError:
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionError, OSError):
                pass

    async def _write_responses(
        self, responses: asyncio.Queue, writer: asyncio.StreamWriter
    ) -> None:
        """Writes each request's response in request order as it resolves."""
        while True:
            future = await responses.get()
            if future is None:
                return
            try:
                payload = await future
                writer.write(wire.encode_frame(payload, self._max_frame_bytes))
                await writer.drain()
            except (ConnectionError, OSError):
                # client went away; keep consuming so admitted work still
                # resolves (and the drain accounting reaches zero)
                pass
            finally:
                self._request_done()

    def _immediate(self, payload: bytes) -> "asyncio.Future[bytes]":
        assert self._loop is not None
        future: "asyncio.Future[bytes]" = self._loop.create_future()
        future.set_result(payload)
        self._request_started()
        return future

    def _request_started(self) -> None:
        self._outstanding += 1
        assert self._idle_event is not None
        self._idle_event.clear()

    def _request_done(self) -> None:
        self._outstanding -= 1
        self.requests_served += 1
        if self._outstanding == 0:
            assert self._idle_event is not None
            self._idle_event.set()

    # ------------------------------------------------------------------ #
    # request dispatch and the coalescing queue
    # ------------------------------------------------------------------ #
    def _dispatch(self, payload: bytes) -> "asyncio.Future[bytes]":
        try:
            request = wire.decode_request(payload)
        except wire.WireError as exc:
            return self._immediate(wire.encode_error(str(exc)))
        if isinstance(request, wire.HelloRequest):
            return self._immediate(wire.encode_hello_ok(self.info()))
        return self._enqueue_answer(request)

    def _enqueue_answer(self, request: wire.AnswerRequest) -> "asyncio.Future[bytes]":
        file_name, masks = request.file_name, request.masks
        num_blocks = self._store.shard_num_pages(self.shard_id, file_name)
        if num_blocks == 0:
            return self._immediate(
                wire.encode_error(f"this shard holds no pages of file {file_name!r}")
            )
        for mask in masks:
            if mask >> num_blocks:
                return self._immediate(
                    wire.encode_error(
                        f"mask addresses blocks beyond the {num_blocks}-block shard"
                    )
                )
        if self._draining:
            return self._immediate(wire.encode_error("shard server is draining"))
        if self._pending_masks + len(masks) > self.max_pending_masks:
            self.busy_rejections += 1
            return self._immediate(
                wire.encode_busy(
                    f"{self._pending_masks} masks already in flight; retry"
                )
            )
        assert self._loop is not None
        future: "asyncio.Future[bytes]" = self._loop.create_future()
        self._request_started()
        batch = self._pending.setdefault(file_name, [])
        batch.append((masks, future))
        self._pending_masks += len(masks)
        pending_here = sum(len(entry_masks) for entry_masks, _ in batch)
        if pending_here >= self.max_batch_masks:
            handle = self._flush_handles.pop(file_name, None)
            if handle is not None:
                handle.cancel()
            self._loop.create_task(self._flush(file_name))
        elif file_name not in self._flush_handles:
            self._flush_handles[file_name] = self._loop.call_later(
                self.coalesce_window_s, self._flush_soon, file_name
            )
        return future

    def _flush_soon(self, file_name: str) -> None:
        assert self._loop is not None
        self._loop.create_task(self._flush(file_name))

    async def _answer_flat(self, kernel: ServerKernel, flat: List[int]) -> List[bytes]:
        """One flush's kernel work, split across the answer thread pool.

        A flush worth at least two :data:`MIN_SPLIT_MASKS`-sized chunks is
        divided into contiguous sub-batches answered concurrently (numpy
        releases the GIL inside the bitwise kernels, so the sub-calls run on
        real cores) and concatenated back in request order.  Every mask's
        answer is an independent function of the immutable pack, so the
        result is bit-identical for any thread count.
        """
        assert self._loop is not None
        pool = self._answer_pool
        parts = min(self.answer_threads, max(1, len(flat) // MIN_SPLIT_MASKS))
        if parts <= 1:
            self.kernel_subcalls += 1
            return await self._loop.run_in_executor(pool, kernel.answer_many, flat)
        size = -(-len(flat) // parts)
        chunks = [flat[start : start + size] for start in range(0, len(flat), size)]
        self.kernel_subcalls += len(chunks)
        results = await asyncio.gather(
            *(
                self._loop.run_in_executor(pool, kernel.answer_many, chunk)
                for chunk in chunks
            )
        )
        answers: List[bytes] = []
        for result in results:
            answers.extend(result)
        return answers

    async def _flush(self, file_name: str) -> None:
        """Answer every pending mask of one file through one kernel batch."""
        handle = self._flush_handles.pop(file_name, None)
        if handle is not None:
            handle.cancel()
        batch = self._pending.pop(file_name, [])
        if not batch:
            return
        flat: List[int] = []
        for masks, _ in batch:
            flat.extend(masks)
        self._pending_masks -= len(flat)
        assert self._loop is not None
        try:
            kernel = self._store.shard_kernel(self.shard_id, file_name, self.kernel)
            answers = await self._answer_flat(kernel, flat)
        except PirError as exc:
            failure = wire.encode_error(str(exc))
            for _, future in batch:
                if not future.done():
                    future.set_result(failure)
            return
        if self.log_queries:
            for mask in flat:
                self.queries_seen.append(
                    (file_name, self.shard_id, frozenset(mask_indices(mask)))
                )
        self.flushes += 1
        self.masks_answered += len(flat)
        self.largest_flush = max(self.largest_flush, len(flat))
        offset = 0
        for masks, future in batch:
            blocks = answers[offset : offset + len(masks)]
            offset += len(masks)
            if not future.done():
                future.set_result(wire.encode_answer_ok(blocks))


class ShardCluster:
    """Boots one :class:`ShardServer` per shard over a shared store view.

    The context-manager form is the intended use::

        with ShardCluster(scheme.database, num_shards=4) as cluster:
            engine = QueryEngine(scheme, serving=cluster)
            ...

    All servers answer off one :class:`~repro.pir.sharded.ShardedPageStore`
    (zero page copies; the packed kernels are memoised per backing store),
    which is exactly the layout an engine with ``shards=len(addresses)``
    expects on the client side.
    """

    def __init__(
        self,
        database: Database,
        num_shards: int,
        strategy: str = "round-robin",
        kernel: Optional[str] = None,
        host: str = "127.0.0.1",
        log_queries: bool = False,
        coalesce_window_s: float = DEFAULT_COALESCE_WINDOW_S,
        max_batch_masks: int = DEFAULT_MAX_BATCH_MASKS,
        max_pending_masks: int = DEFAULT_MAX_PENDING_MASKS,
        answer_threads: int = DEFAULT_ANSWER_THREADS,
        share_packs: bool = False,
    ) -> None:
        self.store = ShardedPageStore(database, num_shards, strategy)
        self.num_shards = num_shards
        self.strategy = strategy
        self._kernel = kernel
        #: Whether :meth:`start` publishes every shard pack to the
        #: shared-pack registry (``stop`` withdraws and unlinks them).  With
        #: it on, one machine-wide shared image backs the cluster — other
        #: processes (shard servers, process workers) attach instead of
        #: repacking, and the in-process servers answer off the same bytes.
        self.share_packs = share_packs
        self._pack_keys: List[Tuple[object, ...]] = []
        self.servers = [
            ShardServer(
                self.store,
                shard_id,
                kernel=kernel,
                host=host,
                coalesce_window_s=coalesce_window_s,
                max_batch_masks=max_batch_masks,
                max_pending_masks=max_pending_masks,
                log_queries=log_queries,
                answer_threads=answer_threads,
            )
            for shard_id in range(num_shards)
        ]
        self._started = False

    def start(self) -> "ShardCluster":
        if not self._started:
            if self.share_packs and not self._pack_keys:
                handles = self.store.publish_shard_packs(kernel=self._kernel)
                self._pack_keys = list(handles)
            for server in self.servers:
                server.start()
            self._started = True
        return self

    def stop(self) -> None:
        for server in self.servers:
            server.stop()
        if self._pack_keys:
            keys, self._pack_keys = self._pack_keys, []
            shared_pack_registry().unpublish(keys)
        self._started = False

    @property
    def addresses(self) -> List[Tuple[str, int]]:
        self.start()
        return [server.address for server in self.servers]  # type: ignore[misc]

    def stats(self) -> List[Dict[str, int]]:
        return [server.stats() for server in self.servers]

    def __enter__(self) -> "ShardCluster":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
