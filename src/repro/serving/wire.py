"""Length-prefixed binary wire protocol of the PIR shard service.

Everything on the wire is stdlib ``struct`` framing — no serialization
dependency, matching the package's bare-interpreter invariant (I3).  A
frame is a 4-byte big-endian payload length followed by the payload; the
payload is one message:

* request  — ``u8 opcode`` + body.  ``HELLO`` carries nothing; ``ANSWER``
  carries a file name and a batch of subset masks (arbitrary-precision
  integers, shipped as length-prefixed big-endian byte strings).
* response — ``u8 status`` + body.  ``OK`` answers carry the shard
  metadata (for ``HELLO``) or the answer blocks (for ``ANSWER``);
  ``BUSY`` is the admission-control backpressure signal (retry later);
  ``ERROR`` carries a human-readable reason.

Responses are returned in request order on each connection, so a client
may pipeline requests without correlation ids.  Every decode path is
bounded: frame, name, mask and block sizes are capped and a violation
raises :class:`WireError` before any allocation proportional to the
attacker-supplied length.  Crucially, the protocol carries only subset
masks — never logical page numbers — so the transport layer adds no
query-plaintext surface beyond what a PIR server already sees.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

from ..exceptions import PirError

#: Hard cap on a single frame's payload (requests and responses).
MAX_FRAME_BYTES = 32 * 1024 * 1024
#: Cap on an encoded file name.
MAX_NAME_BYTES = 1024
#: Cap on one encoded subset mask (supports databases up to 2**24 blocks).
MAX_MASK_BYTES = 2 * 1024 * 1024
#: Cap on the number of masks in one ANSWER request.
MAX_MASKS_PER_REQUEST = 65536

_HEADER = struct.Struct(">I")
#: Bytes of the fixed frame header (the payload-length prefix).
HEADER_SIZE = _HEADER.size
_U8 = struct.Struct(">B")
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")

#: Request opcodes.
OP_HELLO = 1
OP_ANSWER = 2

#: Response status codes.
ST_OK = 0
ST_BUSY = 1
ST_ERROR = 2


class WireError(PirError):
    """Raised for malformed, truncated or oversized wire messages."""


class ServerBusy(PirError):
    """Raised client-side when the server answered ``BUSY`` (backpressure)."""


class RemoteServerError(PirError):
    """Raised client-side when the server answered ``ERROR``."""


@dataclass(frozen=True)
class HelloRequest:
    """Asks a shard server for its identity and layout."""


@dataclass(frozen=True)
class AnswerRequest:
    """Asks a shard server to answer a batch of subset masks over one file."""

    file_name: str
    masks: Tuple[int, ...]


Request = Union[HelloRequest, AnswerRequest]


@dataclass(frozen=True)
class FileInfo:
    """One page file as a shard server holds it: its local slice size."""

    name: str
    num_pages: int
    page_size: int


@dataclass(frozen=True)
class ShardInfo:
    """A shard server's self-description, answered to ``HELLO``."""

    shard_id: int
    num_shards: int
    strategy: str
    kernel: str
    files: Tuple[FileInfo, ...]


# ---------------------------------------------------------------------- #
# framing
# ---------------------------------------------------------------------- #
def decode_frame_length(
    header: bytes, max_frame_bytes: int = MAX_FRAME_BYTES
) -> int:
    """Payload length announced by a 4-byte frame header (cap-checked)."""
    if len(header) != HEADER_SIZE:
        raise WireError(f"frame header must be {HEADER_SIZE} bytes, got {len(header)}")
    (length,) = _HEADER.unpack(header)
    if length > max_frame_bytes:
        raise WireError(
            f"announced frame payload of {length} bytes exceeds the "
            f"{max_frame_bytes}-byte frame cap"
        )
    return int(length)


def encode_frame(payload: bytes, max_frame_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """The on-wire bytes of one frame carrying ``payload``."""
    if len(payload) > max_frame_bytes:
        raise WireError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{max_frame_bytes}-byte frame cap"
        )
    return _HEADER.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental frame parser over an arbitrarily chunked byte stream.

    Feed it whatever the transport delivered; it returns every payload
    completed so far and buffers the remainder.  An announced length above
    the cap raises :class:`WireError` immediately — before buffering the
    body — so a hostile peer cannot make the decoder allocate it.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self._max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[bytes]:
        self._buffer.extend(data)
        payloads: List[bytes] = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return payloads
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > self._max_frame_bytes:
                raise WireError(
                    f"announced frame payload of {length} bytes exceeds the "
                    f"{self._max_frame_bytes}-byte frame cap"
                )
            if len(self._buffer) < _HEADER.size + length:
                return payloads
            payloads.append(bytes(self._buffer[_HEADER.size : _HEADER.size + length]))
            del self._buffer[: _HEADER.size + length]

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered towards the next (incomplete) frame."""
        return len(self._buffer)


# ---------------------------------------------------------------------- #
# primitive field packing
# ---------------------------------------------------------------------- #
class _Writer:
    __slots__ = ("_parts",)

    def __init__(self) -> None:
        self._parts: List[bytes] = []

    def u8(self, value: int) -> None:
        self._parts.append(_U8.pack(value))

    def u16(self, value: int) -> None:
        self._parts.append(_U16.pack(value))

    def u32(self, value: int) -> None:
        self._parts.append(_U32.pack(value))

    def text(self, value: str) -> None:
        encoded = value.encode("utf-8")
        if len(encoded) > MAX_NAME_BYTES:
            raise WireError(
                f"name of {len(encoded)} bytes exceeds the "
                f"{MAX_NAME_BYTES}-byte name cap"
            )
        self.u16(len(encoded))
        self._parts.append(encoded)

    def blob(self, value: bytes, cap: int) -> None:
        if len(value) > cap:
            raise WireError(
                f"field of {len(value)} bytes exceeds its {cap}-byte cap"
            )
        self.u32(len(value))
        self._parts.append(value)

    def done(self) -> bytes:
        return b"".join(self._parts)


class _Reader:
    __slots__ = ("_payload", "_offset")

    def __init__(self, payload: bytes) -> None:
        self._payload = payload
        self._offset = 0

    def _take(self, count: int) -> bytes:
        end = self._offset + count
        if end > len(self._payload):
            raise WireError(
                f"truncated message: wanted {count} more bytes at offset "
                f"{self._offset}, payload holds {len(self._payload)}"
            )
        piece = self._payload[self._offset : end]
        self._offset = end
        return piece

    def u8(self) -> int:
        return int(_U8.unpack(self._take(_U8.size))[0])

    def u16(self) -> int:
        return int(_U16.unpack(self._take(_U16.size))[0])

    def u32(self) -> int:
        return int(_U32.unpack(self._take(_U32.size))[0])

    def text(self) -> str:
        length = self.u16()
        if length > MAX_NAME_BYTES:
            raise WireError(
                f"name of {length} bytes exceeds the {MAX_NAME_BYTES}-byte name cap"
            )
        try:
            return self._take(length).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireError(f"name is not valid UTF-8: {exc}") from None

    def blob(self, cap: int) -> bytes:
        length = self.u32()
        if length > cap:
            raise WireError(f"field of {length} bytes exceeds its {cap}-byte cap")
        return self._take(length)

    def expect_end(self) -> None:
        if self._offset != len(self._payload):
            raise WireError(
                f"{len(self._payload) - self._offset} trailing bytes after message"
            )


def _encode_mask(writer: _Writer, mask: int) -> None:
    if mask < 0:
        raise WireError("subset masks are non-negative integers")
    writer.blob(mask.to_bytes((mask.bit_length() + 7) // 8, "big"), MAX_MASK_BYTES)


# ---------------------------------------------------------------------- #
# requests
# ---------------------------------------------------------------------- #
def encode_hello_request() -> bytes:
    writer = _Writer()
    writer.u8(OP_HELLO)
    return writer.done()


def encode_answer_request(file_name: str, masks: Sequence[int]) -> bytes:
    if len(masks) > MAX_MASKS_PER_REQUEST:
        raise WireError(
            f"{len(masks)} masks exceed the {MAX_MASKS_PER_REQUEST}-mask "
            "per-request cap"
        )
    writer = _Writer()
    writer.u8(OP_ANSWER)
    writer.text(file_name)
    writer.u32(len(masks))
    for mask in masks:
        _encode_mask(writer, mask)
    return writer.done()


def decode_request(payload: bytes) -> Request:
    reader = _Reader(payload)
    opcode = reader.u8()
    if opcode == OP_HELLO:
        reader.expect_end()
        return HelloRequest()
    if opcode == OP_ANSWER:
        file_name = reader.text()
        count = reader.u32()
        if count > MAX_MASKS_PER_REQUEST:
            raise WireError(
                f"{count} masks exceed the {MAX_MASKS_PER_REQUEST}-mask "
                "per-request cap"
            )
        masks = tuple(
            int.from_bytes(reader.blob(MAX_MASK_BYTES), "big") for _ in range(count)
        )
        reader.expect_end()
        return AnswerRequest(file_name=file_name, masks=masks)
    raise WireError(f"unknown request opcode {opcode}")


# ---------------------------------------------------------------------- #
# responses
# ---------------------------------------------------------------------- #
def encode_hello_ok(info: ShardInfo) -> bytes:
    writer = _Writer()
    writer.u8(ST_OK)
    writer.u16(info.shard_id)
    writer.u16(info.num_shards)
    writer.text(info.strategy)
    writer.text(info.kernel)
    writer.u16(len(info.files))
    for file_info in info.files:
        writer.text(file_info.name)
        writer.u32(file_info.num_pages)
        writer.u32(file_info.page_size)
    return writer.done()


def encode_answer_ok(blocks: Sequence[bytes]) -> bytes:
    writer = _Writer()
    writer.u8(ST_OK)
    writer.u32(len(blocks))
    for block in blocks:
        writer.blob(bytes(block), MAX_MASK_BYTES)
    return writer.done()


def encode_busy(message: str) -> bytes:
    writer = _Writer()
    writer.u8(ST_BUSY)
    writer.text(message)
    return writer.done()


def encode_error(message: str) -> bytes:
    writer = _Writer()
    writer.u8(ST_ERROR)
    writer.text(message)
    return writer.done()


def _check_status(reader: _Reader) -> None:
    status = reader.u8()
    if status == ST_OK:
        return
    if status == ST_BUSY:
        raise ServerBusy(reader.text())
    if status == ST_ERROR:
        raise RemoteServerError(reader.text())
    raise WireError(f"unknown response status {status}")


def decode_hello_response(payload: bytes) -> ShardInfo:
    reader = _Reader(payload)
    _check_status(reader)
    shard_id = reader.u16()
    num_shards = reader.u16()
    strategy = reader.text()
    kernel = reader.text()
    files = tuple(
        FileInfo(name=reader.text(), num_pages=reader.u32(), page_size=reader.u32())
        for _ in range(reader.u16())
    )
    reader.expect_end()
    return ShardInfo(
        shard_id=shard_id,
        num_shards=num_shards,
        strategy=strategy,
        kernel=kernel,
        files=files,
    )


def decode_answer_response(payload: bytes) -> List[bytes]:
    reader = _Reader(payload)
    _check_status(reader)
    blocks = [reader.blob(MAX_MASK_BYTES) for _ in range(reader.u32())]
    reader.expect_end()
    return blocks
