"""Open-loop load generator for the PIR shard service.

Drives a booted shard cluster the way a population of independent users
would: retrievals *arrive* on a fixed schedule (``rate`` per second for
``duration_s``), regardless of whether earlier ones have completed — the
open-loop discipline that makes tail latency honest.  If the servers fall
behind, requests queue and p99 grows (or the servers answer ``BUSY``);
nothing in the generator slows the arrival process down.

Each simulated arrival is one full two-server XOR retrieval of a random
page: the client draws the two subset masks, ships both in one request to
the page's owning shard, XOR-combines the answers and (optionally)
verifies the block against the local database — so a loadgen run is also
an end-to-end bit-correctness check of the serving path.

Latency is measured from the *scheduled arrival* to completion, so client-
side queueing behind a saturated connection counts against the service,
warmup completions are excluded, and sustained throughput is the number
of in-window completions over the measurement window.  The benchmark
(``benchmarks/bench_serving.py``) and the ``repro-spc loadgen`` CLI both
run through :func:`run_loadgen`.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import random
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

from ..exceptions import PirError
from ..pir.batch import random_subset_masks
from ..pir.sharded import ShardedPageStore
from ..pir.xor_pir import xor_bytes
from ..storage import Database
from . import wire


@dataclass
class LoadReport:
    """Everything one open-loop run measured."""

    file_name: str
    num_shards: int
    offered_rate: float
    duration_s: float
    warmup_s: float
    connections: int
    arrivals: int = 0
    completed: int = 0
    #: Completions whose arrival fell inside the measurement window.
    measured: int = 0
    busy: int = 0
    errors: int = 0
    mismatches: int = 0
    verified: bool = False
    #: In-window arrivals completed per second of measurement window (the
    #: floored metric: every arrival must complete, correctly, eventually).
    retrievals_per_s: float = 0.0
    #: Completions over the actual completion span — when the servers fall
    #: behind the arrival schedule this drops below the offered rate even
    #: though every retrieval eventually completes (not floored: it tracks
    #: machine capacity, which CI workers do not promise).
    service_rate_per_s: float = 0.0
    p50_ms: float = 0.0
    p99_ms: float = 0.0
    max_ms: float = 0.0
    #: Client processes the load was generated from (1 = in-process).
    client_procs: int = 1
    #: Per-shard server-side flush statistics, when the caller supplies them.
    shard_stats: List[dict] = field(default_factory=list)
    #: Raw in-window latency samples in seconds (sorted); kept so
    #: multi-process runs can merge children into honest aggregate
    #: percentiles instead of averaging percentiles.
    latencies_s: List[float] = field(default_factory=list, repr=False)

    def summary_lines(self) -> List[str]:
        processes = (
            f", {self.client_procs} client process(es)"
            if self.client_procs > 1
            else ""
        )
        return [
            f"open-loop load: {self.offered_rate:g}/s offered for "
            f"{self.duration_s:g}s ({self.warmup_s:g}s warmup), "
            f"{self.num_shards} shard(s), {self.connections} connection(s)"
            f"{processes}",
            f"  arrivals={self.arrivals} completed={self.completed} "
            f"busy={self.busy} errors={self.errors} mismatches={self.mismatches}",
            f"  sustained {self.retrievals_per_s:,.0f} retrievals/s "
            f"(service rate {self.service_rate_per_s:,.0f}/s), "
            f"latency p50={self.p50_ms:.2f}ms p99={self.p99_ms:.2f}ms "
            f"max={self.max_ms:.2f}ms",
        ]


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def run_loadgen(
    addresses: Sequence[Tuple[str, int]],
    database: Database,
    strategy: str = "round-robin",
    file_name: Optional[str] = None,
    rate: float = 1000.0,
    duration_s: float = 2.0,
    warmup_s: float = 0.5,
    connections: int = 16,
    seed: int = 17,
    verify: bool = True,
) -> LoadReport:
    """Run one open-loop burst against already-booted shard servers."""
    addresses = [(host, int(port)) for host, port in addresses]
    if not addresses:
        raise PirError("loadgen needs at least one shard address")
    if warmup_s >= duration_s:
        raise PirError("warmup must be shorter than the run duration")
    store = ShardedPageStore(database, len(addresses), strategy)
    if file_name is None:
        # default to the largest file: the shard slices stay non-trivial
        file_name = max(
            store.maps, key=lambda name: store.maps[name].num_blocks
        )
    if file_name not in store.maps:
        raise PirError(f"file {file_name!r} has no sharded pages")
    num_pages = store.maps[file_name].num_blocks
    page_file = database.file(file_name)
    expected: List[bytes] = (
        page_file.read_pages_batch(list(range(num_pages))) if verify else []
    )
    report = LoadReport(
        file_name=file_name,
        num_shards=len(addresses),
        offered_rate=rate,
        duration_s=duration_s,
        warmup_s=warmup_s,
        connections=max(len(addresses), connections),
        verified=verify,
    )
    latencies, completion_span = asyncio.run(
        _drive(addresses, store, file_name, expected, report, rate, duration_s,
               warmup_s, connections, seed, verify)
    )
    latencies.sort()
    window = duration_s - warmup_s
    report.retrievals_per_s = report.measured / window if window > 0 else 0.0
    report.service_rate_per_s = (
        report.completed / completion_span if completion_span > 0 else 0.0
    )
    report.latencies_s = latencies
    report.p50_ms = _percentile(latencies, 0.50) * 1000.0
    report.p99_ms = _percentile(latencies, 0.99) * 1000.0
    report.max_ms = latencies[-1] * 1000.0 if latencies else 0.0
    return report


def _loadgen_child(connection: Any, kwargs: dict) -> None:
    """One forked client process: run its share and ship the report back."""
    try:
        connection.send(run_loadgen(**kwargs))
    except BaseException as exc:  # surfaced (and re-raised) in the parent
        connection.send(exc)
    finally:
        connection.close()


def run_loadgen_multiproc(
    addresses: Sequence[Tuple[str, int]],
    database: Database,
    strategy: str = "round-robin",
    file_name: Optional[str] = None,
    rate: float = 1000.0,
    duration_s: float = 2.0,
    warmup_s: float = 0.5,
    connections: int = 16,
    seed: int = 17,
    verify: bool = True,
    client_procs: int = 1,
) -> LoadReport:
    """One open-loop burst generated from ``client_procs`` client processes.

    A single client process tops out at what one GIL can schedule, so at
    high offered rates the *generator* becomes the bottleneck and measured
    throughput understates the servers.  This forks ``client_procs``
    independent clients, each offering ``rate / client_procs`` on its own
    seeded arrival schedule and connection pool, and merges their reports:
    counts add, latency samples are pooled before the percentile cut (never
    averaged percentiles), the aggregate service rate is the sum of the
    children's.  ``client_procs=1`` is exactly :func:`run_loadgen`.
    """
    if client_procs < 1:
        raise PirError(f"client_procs must be positive, got {client_procs}")
    shared = dict(
        addresses=[(host, int(port)) for host, port in addresses],
        database=database,
        strategy=strategy,
        file_name=file_name,
        duration_s=duration_s,
        warmup_s=warmup_s,
        verify=verify,
    )
    if client_procs == 1:
        return run_loadgen(rate=rate, connections=connections, seed=seed, **shared)
    # fork: children inherit the database (and its page stores) copy-on-write,
    # so nothing has to be picklable; each child only opens TCP connections
    context = multiprocessing.get_context("fork")
    children = []
    for index in range(client_procs):
        parent_end, child_end = context.Pipe(duplex=False)
        kwargs = dict(
            shared,
            rate=rate / client_procs,
            connections=max(1, connections // client_procs),
            seed=seed * 0x9E3779B1 + index,
        )
        process = context.Process(
            target=_loadgen_child, args=(child_end, kwargs), daemon=True
        )
        process.start()
        child_end.close()
        children.append((process, parent_end))
    reports: List[LoadReport] = []
    failure: Optional[BaseException] = None
    for process, parent_end in children:
        try:
            received = parent_end.recv()
        except EOFError:
            received = PirError("loadgen client process died without reporting")
        process.join()
        if isinstance(received, BaseException):
            failure = failure or received
        else:
            reports.append(received)
    if failure is not None:
        raise failure
    merged = LoadReport(
        file_name=reports[0].file_name,
        num_shards=reports[0].num_shards,
        offered_rate=rate,
        duration_s=duration_s,
        warmup_s=warmup_s,
        connections=sum(report.connections for report in reports),
        verified=verify,
        client_procs=client_procs,
    )
    for report in reports:
        merged.arrivals += report.arrivals
        merged.completed += report.completed
        merged.measured += report.measured
        merged.busy += report.busy
        merged.errors += report.errors
        merged.mismatches += report.mismatches
        merged.service_rate_per_s += report.service_rate_per_s
        merged.latencies_s.extend(report.latencies_s)
    merged.latencies_s.sort()
    window = duration_s - warmup_s
    merged.retrievals_per_s = merged.measured / window if window > 0 else 0.0
    merged.p50_ms = _percentile(merged.latencies_s, 0.50) * 1000.0
    merged.p99_ms = _percentile(merged.latencies_s, 0.99) * 1000.0
    merged.max_ms = merged.latencies_s[-1] * 1000.0 if merged.latencies_s else 0.0
    return merged


async def _drive(
    addresses: List[Tuple[str, int]],
    store: ShardedPageStore,
    file_name: str,
    expected: List[bytes],
    report: LoadReport,
    rate: float,
    duration_s: float,
    warmup_s: float,
    connections: int,
    seed: int,
    verify: bool,
) -> Tuple[List[float], float]:
    loop = asyncio.get_running_loop()
    num_shards = len(addresses)
    per_shard = max(1, connections // num_shards)
    queues: List[asyncio.Queue] = [asyncio.Queue() for _ in range(num_shards)]
    latencies: List[float] = []
    last_finish = [0.0]
    start = loop.time()
    measure_from = start + warmup_s

    async def worker(shard_id: int, worker_index: int) -> None:
        num_blocks = store.shard_num_pages(shard_id, file_name)
        rng = random.Random((seed * 0x9E3779B1 + shard_id) * 65537 + worker_index)
        try:
            reader, writer = await asyncio.open_connection(*addresses[shard_id])
        except OSError as exc:
            raise PirError(
                f"cannot connect to shard server {shard_id} at "
                f"{addresses[shard_id][0]}:{addresses[shard_id][1]}: {exc}"
            ) from exc
        try:
            while True:
                item = await queues[shard_id].get()
                if item is None:
                    return
                scheduled, local_page, global_page = item
                mask_a = random_subset_masks(rng, num_blocks, 1)[0]
                mask_b = mask_a ^ (1 << local_page)
                writer.write(
                    wire.encode_frame(
                        wire.encode_answer_request(file_name, (mask_a, mask_b))
                    )
                )
                await writer.drain()
                header = await reader.readexactly(wire.HEADER_SIZE)
                payload = await reader.readexactly(wire.decode_frame_length(header))
                finished = loop.time()
                try:
                    answers = wire.decode_answer_response(payload)
                except wire.ServerBusy:
                    report.busy += 1
                    continue
                except PirError:
                    report.errors += 1
                    continue
                block = xor_bytes(answers[0], answers[1])
                if verify and block != expected[global_page]:
                    report.mismatches += 1
                report.completed += 1
                last_finish[0] = max(last_finish[0], finished)
                if scheduled >= measure_from:
                    report.measured += 1
                    latencies.append(finished - scheduled)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    workers = [
        asyncio.ensure_future(worker(shard_id, worker_index))
        for shard_id in range(num_shards)
        for worker_index in range(per_shard)
    ]
    arrival_rng = random.Random(seed)
    num_pages = store.maps[file_name].num_blocks
    total = int(rate * duration_s)
    for position in range(total):
        scheduled = start + position / rate
        delay = scheduled - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        page = arrival_rng.randrange(num_pages)
        shard_id, local_page = store.locate(file_name, page)
        queues[shard_id].put_nowait((scheduled, local_page, page))
        report.arrivals += 1
    for shard_id in range(num_shards):
        for _ in range(per_shard):
            queues[shard_id].put_nowait(None)
    await asyncio.gather(*workers)
    return latencies, max(0.0, last_finish[0] - start)
