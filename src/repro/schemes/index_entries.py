"""Network index file (``Fi``) entries: layout, fragmentation and compression.

The network index stores, for every ordered region pair ``(i, j)``, either the
region set ``S_ij`` (CI, and the un-replaced pairs of HY) or the passage
subgraph ``G_ij`` (PI, PI*, and the replaced pairs of HY).  Entries are placed
in ascending ``(i, j)`` order and never straddle a page unnecessarily
(Section 5.3); entries larger than a page start on a fresh page and are split
into raw fragments so every fragment fits a page.

In-page compression (Sections 5.5 and 6) stores an entry as a *delta* against
the already-placed entry of the same page with the largest overlap.  Region-set
deltas may also carry *exclusions* so the inflated set never exceeds the plan
value ``m``; subgraph deltas only carry additions (extra edges are harmless).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..exceptions import SchemeError, StorageError
from ..storage import Page, PageFile, RecordReader, RecordWriter

RegionPair = Tuple[int, int]
WeightedEdge = Tuple[int, int, float]

KIND_REGION_RAW = 0
KIND_REGION_DELTA = 1
KIND_SUBGRAPH_RAW = 2
KIND_SUBGRAPH_DELTA = 3

_REGION_KINDS = (KIND_REGION_RAW, KIND_REGION_DELTA)
_SUBGRAPH_KINDS = (KIND_SUBGRAPH_RAW, KIND_SUBGRAPH_DELTA)


def _float32(value: float) -> float:
    """Round-trip a float through 32-bit precision (the on-disk representation)."""
    return struct.unpack("<f", struct.pack("<f", value))[0]


@dataclass(frozen=True)
class IndexEntry:
    """A decoded network-index entry as seen by the querying client."""

    key: RegionPair
    #: Effective region set (possibly inflated by compression); ``None`` for subgraphs.
    regions: Optional[FrozenSet[int]]
    #: Effective edge set (possibly inflated by compression); ``None`` for region sets.
    edges: Optional[FrozenSet[WeightedEdge]]

    @property
    def is_region_set(self) -> bool:
        return self.regions is not None


@dataclass
class _PlacedEntry:
    """Builder-side record of an entry placed in the page currently being filled."""

    key: RegionPair
    kind: int
    effective_regions: Optional[FrozenSet[int]]
    effective_edges: Optional[FrozenSet[WeightedEdge]]
    is_fragment: bool


@dataclass
class EntryLocation:
    """Where a pair's entry lives in the index file."""

    start_page: int
    page_span: int


class IndexFileBuilder:
    """Builds the network index file page by page."""

    def __init__(
        self,
        page_file: PageFile,
        compress: bool = True,
        max_region_set_size: Optional[int] = None,
    ) -> None:
        self.page_file = page_file
        self.compress = compress
        self.max_region_set_size = max_region_set_size
        self.locations: Dict[RegionPair, EntryLocation] = {}
        self._current_page: Optional[Page] = None
        self._current_entries: List[_PlacedEntry] = []

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def add_region_set(self, i: int, j: int, regions: Iterable[int]) -> None:
        """Place the region set ``S_ij``."""
        self._add_entry((i, j), frozenset(int(r) for r in regions), None)

    def add_subgraph(self, i: int, j: int, edges: Iterable[WeightedEdge]) -> None:
        """Place the passage subgraph ``G_ij`` (edges carry their weights)."""
        normalized = frozenset((int(u), int(v), _float32(w)) for u, v, w in edges)
        self._add_entry((i, j), None, normalized)

    @property
    def max_page_span(self) -> int:
        """The largest number of pages spanned by any entry placed so far."""
        if not self.locations:
            return 1
        return max(location.page_span for location in self.locations.values())

    def location_of(self, key: RegionPair) -> EntryLocation:
        try:
            return self.locations[key]
        except KeyError:
            raise SchemeError(f"no index entry was placed for region pair {key}") from None

    # ------------------------------------------------------------------ #
    # placement
    # ------------------------------------------------------------------ #
    def _add_entry(
        self,
        key: RegionPair,
        regions: Optional[FrozenSet[int]],
        edges: Optional[FrozenSet[WeightedEdge]],
    ) -> None:
        if key in self.locations:
            raise SchemeError(f"region pair {key} was placed twice in the index file")
        capacity = self.page_file.page_size

        raw_bytes = _encode_raw(key, regions, edges)
        framed_raw = _frame(raw_bytes)

        if len(framed_raw) > capacity:
            self._place_fragmented(key, regions, edges)
            return

        best = framed_raw
        best_effective_regions, best_effective_edges = regions, edges
        if self.compress and self._current_page is not None:
            delta = self._best_delta(key, regions, edges)
            if delta is not None and len(delta[0]) < len(framed_raw):
                best, best_effective_regions, best_effective_edges = delta

        if self._current_page is None or not self._current_page.fits(best):
            # no straddling: close the page and start a new one; a fresh page has
            # no reference candidates, so fall back to the raw encoding
            self._start_new_page()
            best = framed_raw
            best_effective_regions, best_effective_edges = regions, edges

        self._current_page.append(best)
        page_number = self.page_file.num_pages - 1
        self.locations[key] = EntryLocation(start_page=page_number, page_span=1)
        self._current_entries.append(
            _PlacedEntry(
                key=key,
                kind=KIND_REGION_RAW if regions is not None else KIND_SUBGRAPH_RAW,
                effective_regions=best_effective_regions,
                effective_edges=best_effective_edges,
                is_fragment=False,
            )
        )

    def _place_fragmented(
        self,
        key: RegionPair,
        regions: Optional[FrozenSet[int]],
        edges: Optional[FrozenSet[WeightedEdge]],
    ) -> None:
        """Split an oversized entry into raw fragments starting on a fresh page."""
        self._start_new_page()
        start_page = self.page_file.num_pages - 1
        elements: List = sorted(regions) if regions is not None else sorted(edges)
        is_region = regions is not None
        position = 0
        while position < len(elements):
            chunk: List = []
            while position < len(elements):
                candidate = chunk + [elements[position]]
                encoded = _encode_raw(
                    key,
                    frozenset(candidate) if is_region else None,
                    None if is_region else frozenset(candidate),
                )
                if len(_frame(encoded)) > self._current_page.free_bytes:
                    break
                chunk = candidate
                position += 1
            if not chunk:
                # current page cannot take even one element: move to a fresh page
                self._start_new_page()
                continue
            encoded = _encode_raw(
                key,
                frozenset(chunk) if is_region else None,
                None if is_region else frozenset(chunk),
            )
            self._current_page.append(_frame(encoded))
            self._current_entries.append(
                _PlacedEntry(
                    key=key,
                    kind=KIND_REGION_RAW if is_region else KIND_SUBGRAPH_RAW,
                    effective_regions=frozenset(chunk) if is_region else None,
                    effective_edges=None if is_region else frozenset(chunk),
                    is_fragment=True,
                )
            )
            if position < len(elements):
                self._start_new_page()
        end_page = self.page_file.num_pages - 1
        self.locations[key] = EntryLocation(
            start_page=start_page, page_span=end_page - start_page + 1
        )

    def _start_new_page(self) -> None:
        if self._current_page is not None and self._current_page.used_bytes == 0:
            # the current page is still empty: reuse it instead of wasting it
            self._current_entries = []
            return
        self._current_page = self.page_file.new_page()
        self._current_entries = []

    # ------------------------------------------------------------------ #
    # compression
    # ------------------------------------------------------------------ #
    def _best_delta(
        self,
        key: RegionPair,
        regions: Optional[FrozenSet[int]],
        edges: Optional[FrozenSet[WeightedEdge]],
    ):
        """The smallest delta encoding against a reference in the current page, if any."""
        best_tuple = None
        best_size = None
        for position, placed in enumerate(self._current_entries):
            if placed.is_fragment:
                continue
            if regions is not None and placed.effective_regions is not None:
                encoded, effective = self._encode_region_delta(
                    key, regions, placed.effective_regions, position
                )
                if encoded is None:
                    continue
                framed = _frame(encoded)
                if best_size is None or len(framed) < best_size:
                    best_size = len(framed)
                    best_tuple = (framed, effective, None)
            elif edges is not None and placed.effective_edges is not None:
                reference = placed.effective_edges
                additions = edges - reference
                if len(additions) >= len(edges):
                    continue
                writer = RecordWriter()
                writer.uint32(key[0]).uint32(key[1]).raw(bytes([KIND_SUBGRAPH_DELTA]))
                writer.varint(position)
                writer.varint(len(additions))
                for u, v, w in sorted(additions):
                    writer.uint32(u).uint32(v).float32(w)
                framed = _frame(writer.getvalue())
                if best_size is None or len(framed) < best_size:
                    best_size = len(framed)
                    best_tuple = (framed, None, frozenset(reference | additions))
        if best_tuple is None:
            return None
        framed, effective_regions, effective_edges = best_tuple
        return framed, effective_regions, effective_edges

    def _encode_region_delta(
        self,
        key: RegionPair,
        regions: FrozenSet[int],
        reference: FrozenSet[int],
        position: int,
    ):
        additions = regions - reference
        inflated = reference | regions
        exclusions: FrozenSet[int] = frozenset()
        if self.max_region_set_size is not None and len(inflated) > self.max_region_set_size:
            surplus = len(inflated) - self.max_region_set_size
            removable = sorted(reference - regions)
            if len(removable) < surplus:
                return None, None
            exclusions = frozenset(removable[:surplus])
        effective = inflated - exclusions
        writer = RecordWriter()
        writer.uint32(key[0]).uint32(key[1]).raw(bytes([KIND_REGION_DELTA]))
        writer.varint(position)
        writer.uint32_list(sorted(additions))
        writer.uint32_list(sorted(exclusions))
        return writer.getvalue(), frozenset(effective)


# ---------------------------------------------------------------------- #
# encoding helpers
# ---------------------------------------------------------------------- #
def _encode_raw(
    key: RegionPair,
    regions: Optional[FrozenSet[int]],
    edges: Optional[FrozenSet[WeightedEdge]],
) -> bytes:
    writer = RecordWriter()
    if regions is not None:
        writer.uint32(key[0]).uint32(key[1]).raw(bytes([KIND_REGION_RAW]))
        writer.uint32_list(sorted(regions))
    elif edges is not None:
        writer.uint32(key[0]).uint32(key[1]).raw(bytes([KIND_SUBGRAPH_RAW]))
        writer.varint(len(edges))
        for u, v, w in sorted(edges):
            writer.uint32(u).uint32(v).float32(w)
    else:
        raise SchemeError("an index entry must carry either regions or edges")
    return writer.getvalue()


def _frame(entry_bytes: bytes) -> bytes:
    """Prefix an entry with its length (zero-length marks page padding)."""
    writer = RecordWriter()
    writer.varint(len(entry_bytes))
    writer.raw(entry_bytes)
    return writer.getvalue()


# ---------------------------------------------------------------------- #
# decoding (client side)
# ---------------------------------------------------------------------- #
@dataclass
class _RawDecodedEntry:
    key: RegionPair
    kind: int
    reference_position: Optional[int]
    regions: Optional[List[int]]
    exclusions: Optional[List[int]]
    edges: Optional[List[WeightedEdge]]


def _decode_page_entries(page_bytes: bytes) -> List[_RawDecodedEntry]:
    reader = RecordReader(page_bytes)
    entries: List[_RawDecodedEntry] = []
    while reader.remaining() > 0:
        length = reader.varint()
        if length == 0:
            break
        body = RecordReader(reader.raw(length))
        i = body.uint32()
        j = body.uint32()
        kind = body.raw(1)[0]
        reference_position: Optional[int] = None
        regions: Optional[List[int]] = None
        exclusions: Optional[List[int]] = None
        edges: Optional[List[WeightedEdge]] = None
        if kind == KIND_REGION_RAW:
            regions = body.uint32_list()
        elif kind == KIND_REGION_DELTA:
            reference_position = body.varint()
            regions = body.uint32_list()
            exclusions = body.uint32_list()
        elif kind == KIND_SUBGRAPH_RAW:
            count = body.varint()
            edges = body.edge_list(count)
        elif kind == KIND_SUBGRAPH_DELTA:
            reference_position = body.varint()
            count = body.varint()
            edges = body.edge_list(count)
        else:
            raise StorageError(f"unknown index entry kind {kind}")
        entries.append(_RawDecodedEntry((i, j), kind, reference_position, regions, exclusions, edges))
    return entries


def _resolve_page(entries: List[_RawDecodedEntry]) -> List[IndexEntry]:
    """Resolve delta references within a single page."""
    resolved: List[IndexEntry] = []
    for position, entry in enumerate(entries):
        if entry.kind == KIND_REGION_RAW:
            resolved.append(IndexEntry(entry.key, frozenset(entry.regions), None))
        elif entry.kind == KIND_REGION_DELTA:
            reference = resolved[entry.reference_position]
            if reference.regions is None:
                raise StorageError("region-set delta references a subgraph entry")
            effective = (reference.regions | set(entry.regions)) - set(entry.exclusions)
            resolved.append(IndexEntry(entry.key, frozenset(effective), None))
        elif entry.kind == KIND_SUBGRAPH_RAW:
            resolved.append(IndexEntry(entry.key, None, frozenset(entry.edges)))
        else:  # KIND_SUBGRAPH_DELTA
            reference = resolved[entry.reference_position]
            if reference.edges is None:
                raise StorageError("subgraph delta references a region-set entry")
            effective = reference.edges | set(entry.edges)
            resolved.append(IndexEntry(entry.key, None, frozenset(effective)))
    return resolved


def resolve_page_image(page_bytes: bytes) -> List[IndexEntry]:
    """Pure resolver: decode and delta-resolve one index page image.

    This is the resolver the storage layer memoises per page number
    (:meth:`~repro.storage.stores.PageStore.resolve`), so the resolved entry
    list lives *with the bytes* in the page store instead of in a byte-keyed
    client cache — the client-side path below still uses the per-worker
    decode cache, because PIR-fetched bytes carry no page identity.
    """
    return _resolve_page(_decode_page_entries(bytes(page_bytes)))


def resolved_entries_at(page_file: PageFile, page_number: int) -> List[IndexEntry]:
    """Store-memoised resolution of one index page, by page number.

    Server-side consumers (builders, inspection tools, the out-of-core
    example) resolve through the page store's own cache; repeated resolution
    of a page neither re-reads nor re-decodes it, on any backend.  Entries
    are frozen dataclasses and safe to share.
    """
    return page_file.resolve_page(page_number, resolve_page_image)


def resolved_page_entries(page_bytes: bytes) -> List[IndexEntry]:
    """All (delta-resolved) entries of one index page.

    When the query engine has a decode cache installed, identical page
    contents resolve once and the entry list is shared; entries are frozen
    dataclasses and safe to share between queries.
    """
    from .files import current_decode_cache  # deferred: files imports storage early

    cache = current_decode_cache()
    if cache is None:
        return resolve_page_image(page_bytes)
    resolved = cache.get(("ipage", page_bytes))
    if resolved is None:
        resolved = resolve_page_image(page_bytes)
        cache.put(("ipage", page_bytes), resolved)
    return resolved


def decode_index_entry(pages: Sequence[bytes], key: RegionPair) -> Optional[IndexEntry]:
    """Extract (and merge, if fragmented) the entry for ``key`` from fetched pages."""
    regions: set = set()
    edges: set = set()
    found_regions = False
    found_edges = False
    for page_bytes in pages:
        resolved = resolved_page_entries(page_bytes)
        for entry in resolved:
            if entry.key != key:
                continue
            if entry.regions is not None:
                regions |= entry.regions
                found_regions = True
            if entry.edges is not None:
                edges |= entry.edges
                found_edges = True
    if found_regions:
        return IndexEntry(key, frozenset(regions), None)
    if found_edges:
        return IndexEntry(key, None, frozenset(edges))
    return None
