"""Scheme base classes: query execution, plan enforcement and cost accounting.

A *scheme* owns a database hosted by the LBS, a fixed query plan, and the
client-side query-processing logic.  All schemes answer a query through the
same machinery:

* the :class:`RoundManager` performs header downloads and PIR page fetches,
  recording them in an :class:`~repro.pir.AccessTrace`,
* the scheme pads every round with dummy retrievals until it matches the plan,
* :func:`verify_plan_conformance` asserts (not just hopes) that the adversary
  view equals the plan's canonical view, and
* :func:`response_time_from_trace` converts the trace into the paper's
  response-time decomposition.
"""

from __future__ import annotations

import abc
import random
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

from ..costmodel import CostModel, DEFAULT_SPEC, ResponseTime, SystemSpec
from ..exceptions import PlanViolationError, SchemeError
from ..network import NodeId, Path, RoadNetwork
from ..pir import AccessTrace, AdversaryView, SecureCoprocessor, UsablePirSimulator
from ..storage import Database
from .plan import QueryPlan


@dataclass
class QueryResult:
    """Everything a single private shortest-path query produces."""

    path: Path
    response: ResponseTime
    trace: AccessTrace
    client_seconds: float

    @property
    def adversary_view(self) -> AdversaryView:
        return self.trace.adversary_view()

    @property
    def pages_per_file(self) -> Dict[str, int]:
        return self.trace.pir_accesses_per_file()

    @property
    def total_pir_pages(self) -> int:
        return self.trace.total_pir_accesses()


#: Per-context override of the client-side protocol state (PIR simulator and
#: dummy-retrieval RNG).  The parallel query engine installs one override per
#: worker so concurrent shards never share mutable PIR state or an RNG
#: stream; outside an engine the scheme's own members are used.
_client_state_var: ContextVar = ContextVar("repro_client_state", default=None)


@contextmanager
def client_state_scope(pir: "UsablePirSimulator", rng: random.Random):
    """Route :meth:`Scheme.new_round_manager` through ``pir``/``rng`` in this context."""
    token = _client_state_var.set((pir, rng))
    try:
        yield
    finally:
        _client_state_var.reset(token)


class RemoteSolve(NamedTuple):
    """The picklable portion of a prepared query's solve phase.

    ``function`` must be a module-level callable (picklable by reference) and
    ``args`` plain data (page bytes, node ids, …); the function returns
    ``(path, solve_seconds)``.  The engine's process workers execute exactly
    this — the CPU-bound record decode, CSR assembly and search — in a
    subprocess, and the result is stitched back into a
    :class:`QueryResult` by :meth:`PreparedQuery.finish`.

    ``cache_key`` names the assembled subgraph's entry in the worker's
    decode cache (when the scheme has one): the engine probes it before
    shipping the solve to a subprocess, because a cached assembly makes the
    in-process solve cheaper than any pickle round trip.
    """

    function: Callable
    args: Tuple
    cache_key: Optional[Tuple] = None


class PreparedQuery:
    """A query whose PIR rounds have completed.

    Splitting a query into a *retrieval* phase (all protocol rounds, plus the
    light decoding needed to address the next round's pages) and a *solve*
    phase (region decoding, subgraph assembly and the shortest-path search)
    lets the engine pipeline a batch: the PIR rounds of the next query overlap
    the client-side solve of the current one.

    Schemes whose solve phase is pure data → path (the CSR-native pipelines)
    additionally supply ``remote`` — a picklable :class:`RemoteSolve` — and
    ``finish``, which turns the remote result back into a
    :class:`QueryResult`.  That pair is what lets the engine ship the
    CPU-bound decode to process workers (``worker_mode="process"``) while
    retrieval and plan verification stay in the parent.
    """

    __slots__ = ("_solve", "remote", "_finish")

    def __init__(
        self,
        solve: Callable[[], "QueryResult"],
        remote: Optional[RemoteSolve] = None,
        finish: Optional[Callable[[Path, float], "QueryResult"]] = None,
    ) -> None:
        if (remote is None) != (finish is None):
            raise SchemeError("remote and finish must be supplied together")
        self._solve = solve
        self.remote = remote
        self._finish = finish

    def solve(self) -> "QueryResult":
        """Run the remaining client-side work and produce the result."""
        return self._solve()

    def finish(self, path: Path, solve_seconds: float) -> "QueryResult":
        """Complete the query from a remotely executed solve phase."""
        if self._finish is None:
            raise SchemeError("this prepared query has no remote solve phase")
        return self._finish(path, solve_seconds)


class RoundManager:
    """Drives the multi-round client protocol for one query."""

    def __init__(
        self,
        pir: UsablePirSimulator,
        trace: AccessTrace,
        rng: random.Random,
    ) -> None:
        self._pir = pir
        self._trace = trace
        self._rng = rng
        self._round_counts: Dict[str, int] = {}

    def begin_round(self) -> int:
        self._round_counts = {}
        return self._trace.begin_round()

    def download_header(self) -> bytes:
        return self._pir.download_header(self._trace)

    def fetch(self, file_name: str, page_number: int) -> bytes:
        data = self._pir.retrieve_page(file_name, page_number, self._trace)
        self._round_counts[file_name] = self._round_counts.get(file_name, 0) + 1
        return data

    def fetch_many(self, file_name: str, page_numbers: Sequence[int]) -> List[bytes]:
        """Fetch a batch of pages in one call.

        Routed through the simulator's batched retrieval so a sharded store
        serves each shard's sub-batch through its own connection; traces and
        costs are identical to repeated :meth:`fetch` calls.
        """
        page_numbers = list(page_numbers)
        data = self._pir.retrieve_pages(file_name, page_numbers, self._trace)
        self._round_counts[file_name] = (
            self._round_counts.get(file_name, 0) + len(page_numbers)
        )
        return data

    def pages_fetched_this_round(self, file_name: str) -> int:
        return self._round_counts.get(file_name, 0)

    def pad(self, file_name: str, target_pages: int) -> None:
        """Issue dummy retrievals until ``target_pages`` pages of ``file_name``
        have been fetched in the current round.

        Dummy requests target uniformly random pages so they are
        indistinguishable from real ones at the PIR layer.
        """
        already = self.pages_fetched_this_round(file_name)
        if already > target_pages:
            raise PlanViolationError(
                f"query fetched {already} pages from {file_name!r} but the plan "
                f"allows only {target_pages}"
            )
        num_pages = self._pir.database.file(file_name).num_pages
        for _ in range(target_pages - already):
            self.fetch(file_name, self._rng.randrange(num_pages))


def verify_plan_conformance(trace: AccessTrace, plan: QueryPlan) -> None:
    """Raise :class:`PlanViolationError` unless the trace matches the plan exactly."""
    observed = trace.adversary_view()
    expected = plan.expected_adversary_view()
    if observed != expected:
        raise PlanViolationError(
            "query execution deviated from the fixed query plan; observed "
            f"{[ (e.round_number, e.kind, e.file_name) for e in observed.events ]} "
            f"but expected {[ (e.round_number, e.kind, e.file_name) for e in expected.events ]}"
        )


def response_time_from_trace(
    trace: AccessTrace,
    database: Database,
    cost_model: CostModel,
    client_seconds: float = 0.0,
) -> ResponseTime:
    """Convert an access trace into the paper's response-time decomposition."""
    file_sizes = {name: database.file(name).num_pages for name in database.file_names()}
    response = ResponseTime(client_s=client_seconds)
    per_round: Dict[int, Dict[str, int]] = {}
    header_rounds: Dict[int, int] = {}
    for event in trace.adversary_view().events:
        if event.kind == "header":
            header_rounds[event.round_number] = header_rounds.get(event.round_number, 0) + 1
        else:
            round_files = per_round.setdefault(event.round_number, {})
            round_files[event.file_name] = round_files.get(event.file_name, 0) + 1
    for round_number, downloads in header_rounds.items():
        response = response + cost_model.header_download(trace.header_bytes).scaled(downloads)
    for round_number, files in per_round.items():
        response = response + cost_model.pir_round(files, file_sizes)
    return response


class Scheme(abc.ABC):
    """Base class of all query-processing schemes."""

    #: Short name used in reports ("CI", "PI", "HY", "PI*", "LM", "AF").
    name: str = "scheme"

    def __init__(
        self,
        network: RoadNetwork,
        database: Database,
        plan: QueryPlan,
        spec: SystemSpec = DEFAULT_SPEC,
        enforce_scp_limits: bool = False,
        dummy_seed: int = 0,
    ) -> None:
        self.network = network
        self.database = database
        # seal every builder's tail page so the database is fully on its
        # page-store backend before the first query is served
        database.flush()
        self.plan = plan
        self.spec = spec
        self.cost_model = CostModel(spec)
        self.pir = UsablePirSimulator(
            database,
            scp=SecureCoprocessor(spec),
            spec=spec,
            enforce_limits=enforce_scp_limits,
        )
        self.dummy_seed = dummy_seed
        self._dummy_rng = random.Random(dummy_seed)

    # ------------------------------------------------------------------ #
    # common helpers
    # ------------------------------------------------------------------ #
    @property
    def storage_bytes(self) -> int:
        return self.database.total_size_bytes

    @property
    def storage_mb(self) -> float:
        return self.database.total_size_mb

    def new_round_manager(self, trace: AccessTrace) -> RoundManager:
        override = _client_state_var.get()
        if override is not None:
            pir, rng = override
            return RoundManager(pir, trace, rng)
        return RoundManager(self.pir, trace, self._dummy_rng)

    def exceeds_pir_file_limit(self) -> bool:
        """True when any PIR-accessible file exceeds the interface's maximum size."""
        scp = SecureCoprocessor(self.spec)
        return any(not scp.supports_file(f) for f in self.database.files())

    def finish_query(
        self,
        path: Path,
        trace: AccessTrace,
        client_seconds: float,
        check_plan: bool = True,
    ) -> QueryResult:
        if check_plan:
            verify_plan_conformance(trace, self.plan)
        response = response_time_from_trace(trace, self.database, self.cost_model, client_seconds)
        return QueryResult(path=path, response=response, trace=trace, client_seconds=client_seconds)

    # ------------------------------------------------------------------ #
    # abstract interface
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def query(self, source: NodeId, target: NodeId) -> QueryResult:
        """Answer a shortest-path query from ``source`` to ``target``."""

    def prepare_query(self, source: NodeId, target: NodeId) -> PreparedQuery:
        """Run the PIR rounds of a query, deferring the client-side solve.

        Schemes with a CSR-native client pipeline override this to return
        after the last round, leaving region decoding, subgraph assembly and
        the search to :meth:`PreparedQuery.solve`.  The default runs the
        whole query eagerly, so every scheme works under the pipelined
        engine.
        """
        result = self.query(source, target)
        return PreparedQuery(lambda: result)

    def query_by_coordinates(
        self, source_xy: Tuple[float, float], target_xy: Tuple[float, float]
    ) -> QueryResult:
        """Answer a query given Euclidean coordinates (snapped to the closest nodes)."""
        source = self.network.nearest_node(*source_xy)
        target = self.network.nearest_node(*target_xy)
        return self.query(source, target)


class Timer:
    """Tiny helper to accumulate client-side computation time."""

    def __init__(self) -> None:
        self.seconds = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.seconds += time.perf_counter() - self._start
