"""Hybrid scheme (HY) — Section 6 of the paper.

HY starts from CI's region sets and replaces the largest ones (those whose
cardinality exceeds a threshold) with the corresponding passage subgraphs,
trading index size for fewer region-data retrievals.  Crucially the network
index and the region data are concatenated into a *single* physical file: if
they were separate, the adversary could tell from the per-file page counts
whether a query was answered through a region set or through a subgraph,
narrowing down the possible source/destination regions.

Query plan: header, one look-up page, ``r`` pages of the combined file
(``r`` = the largest number of pages an un-replaced region set spans), and a
final round of ``M`` combined-file pages covering subgraph continuation pages,
region-data pages and dummies.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from ..costmodel import DEFAULT_SPEC, SystemSpec
from ..exceptions import SchemeError
from ..network import NodeId, RoadNetwork
from ..partition import (
    BorderNodeIndex,
    Partitioning,
    compute_border_nodes,
    packed_kdtree_partition,
    plain_kdtree_partition,
)
from ..precompute import BorderProducts, compute_border_products
from ..storage import Database
from . import assembly
from .assembly import csr_shortest_path
from .base import PreparedQuery, QueryResult, RemoteSolve, Scheme, Timer
from .files import (
    COMBINED_FILE,
    HeaderInfo,
    LOOKUP_FILE,
    build_lookup_file,
    build_region_data_file,
    lookup_entries_per_page,
    read_lookup_entry,
)
from .index_entries import IndexFileBuilder, decode_index_entry
from .plan import QueryPlan, RoundSpec

_PAYLOAD_RESERVE = 8

RegionPair = Tuple[int, int]


class HybridScheme(Scheme):
    """The Hybrid scheme (HY)."""

    name = "HY"

    def __init__(
        self,
        network: RoadNetwork,
        database: Database,
        plan: QueryPlan,
        header: HeaderInfo,
        partitioning: Partitioning,
        region_set_threshold: int,
        num_replaced_pairs: int,
        spec: SystemSpec = DEFAULT_SPEC,
    ) -> None:
        super().__init__(network, database, plan, spec)
        self.header = header
        self.partitioning = partitioning
        self.region_set_threshold = region_set_threshold
        self.num_replaced_pairs = num_replaced_pairs

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        network: RoadNetwork,
        spec: SystemSpec = DEFAULT_SPEC,
        region_set_threshold: int = 20,
        packed: bool = True,
        compress: bool = True,
        partitioning: Optional[Partitioning] = None,
        border_index: Optional[BorderNodeIndex] = None,
        products: Optional[BorderProducts] = None,
        passage_subgraphs: Optional[Dict[RegionPair, Iterable[Tuple[int, int]]]] = None,
        store_backend: Optional[str] = None,
        store_dir=None,
    ) -> "HybridScheme":
        """Build HY; region sets larger than ``region_set_threshold`` are replaced.

        ``passage_subgraphs`` may supply pre-computed ``G_ij`` edge sets for
        (at least) the replaced pairs, so that parameter sweeps do not repeat
        the border-node Dijkstra pass.
        """
        page_size = spec.page_size
        capacity = page_size - _PAYLOAD_RESERVE
        if partitioning is None:
            partition_fn = packed_kdtree_partition if packed else plain_kdtree_partition
            partitioning = partition_fn(network, capacity)
        if border_index is None:
            border_index = compute_border_nodes(network, partitioning)
        if products is None or not products.region_sets:
            products = compute_border_products(
                network, partitioning, border_index, want_region_sets=True
            )

        num_regions = partitioning.num_regions
        replaced = {
            pair
            for pair, regions in products.region_sets.items()
            if len(regions) > region_set_threshold
        }
        kept_sizes = [
            len(regions)
            for pair, regions in products.region_sets.items()
            if pair not in replaced
        ]
        kept_max = max(kept_sizes) if kept_sizes else 0

        subgraph_edges: Dict[RegionPair, FrozenSet[Tuple[int, int]]] = {}
        if replaced:
            if passage_subgraphs is not None:
                missing = [pair for pair in sorted(replaced) if pair not in passage_subgraphs]
                if missing:
                    raise SchemeError(
                        f"passage subgraphs missing for {len(missing)} replaced pairs"
                    )
                subgraph_edges = {
                    pair: frozenset(tuple(edge) for edge in passage_subgraphs[pair])
                    for pair in sorted(replaced)
                }
            else:
                extra = compute_border_products(
                    network,
                    partitioning,
                    border_index,
                    want_region_sets=False,
                    want_subgraphs=True,
                    subgraph_pairs=replaced,
                )
                subgraph_edges = {
                    pair: extra.passage_subgraph(*pair) for pair in sorted(replaced)
                }

        weights = {(edge.source, edge.target): edge.weight for edge in network.edges()}

        database = Database(page_size, store_backend=store_backend, store_dir=store_dir)
        combined = database.create_file(COMBINED_FILE)
        builder = IndexFileBuilder(
            combined, compress=compress, max_region_set_size=max(kept_max, 1)
        )
        for region_i in range(num_regions):
            for region_j in range(num_regions):
                pair = (region_i, region_j)
                if pair in replaced:
                    # frozenset iteration would randomise the on-page edge
                    # layout across runs; sort for a reproducible image (I2)
                    weighted = [
                        (u, v, weights[(u, v)]) for u, v in sorted(subgraph_edges[pair])
                    ]
                    builder.add_subgraph(region_i, region_j, weighted)
                else:
                    builder.add_region_set(
                        region_i, region_j, products.region_set(region_i, region_j)
                    )

        region_set_span = 1
        subgraph_span = 0
        for pair, location in builder.locations.items():
            if pair in replaced:
                subgraph_span = max(subgraph_span, location.page_span)
            else:
                region_set_span = max(region_set_span, location.page_span)
        continuation_pages = max(0, subgraph_span - region_set_span)

        num_index_pages = combined.num_pages
        build_region_data_file(
            database, network, partitioning, pages_per_region=1, page_file=combined
        )
        build_lookup_file(
            database,
            num_regions,
            lambda i, j: builder.location_of((i, j)).start_page,
        )

        final_round_pages = max(kept_max + 2, continuation_pages + 2)
        plan = QueryPlan.from_rounds(
            [
                RoundSpec(includes_header=True),
                RoundSpec(fetches=((LOOKUP_FILE, 1),)),
                RoundSpec(fetches=((COMBINED_FILE, region_set_span),)),
                RoundSpec(fetches=((COMBINED_FILE, final_round_pages),)),
            ]
        )
        header = HeaderInfo(
            scheme_name=cls.name,
            page_size=page_size,
            num_regions=num_regions,
            data_file=COMBINED_FILE,
            index_file=COMBINED_FILE,
            lookup_file=LOOKUP_FILE,
            data_pages_per_region=1,
            data_page_offset=num_index_pages,
            lookup_entries_per_page=lookup_entries_per_page(page_size),
            index_fetch_pages=region_set_span,
            data_round_pages=final_round_pages,
            num_index_pages=num_index_pages,
            num_data_pages=combined.num_pages - num_index_pages,
            num_lookup_pages=database.file(LOOKUP_FILE).num_pages,
            tree_splits=partitioning.tree_splits(),
            plan=plan,
            index_continuation_pages=continuation_pages,
        )
        database.set_header(header.encode())
        return cls(
            network,
            database,
            plan,
            header,
            partitioning,
            region_set_threshold,
            len(replaced),
            spec,
        )

    # ------------------------------------------------------------------ #
    # query processing
    # ------------------------------------------------------------------ #
    def query(self, source: NodeId, target: NodeId) -> QueryResult:
        return self.prepare_query(source, target).solve()

    def prepare_query(self, source: NodeId, target: NodeId) -> PreparedQuery:
        """All four PIR rounds; CSR assembly and the search run in ``solve()``."""
        from ..pir import AccessTrace

        trace = AccessTrace()
        rounds = self.new_round_manager(trace)
        timer = Timer()

        # round 1: header download and region mapping
        rounds.begin_round()
        header_bytes = rounds.download_header()
        with timer:
            header = HeaderInfo.decode(header_bytes)
            source_node = self.network.node(source)
            target_node = self.network.node(target)
            source_region = header.region_of_point(source_node.x, source_node.y)
            target_region = header.region_of_point(target_node.x, target_node.y)

        # round 2: one look-up page
        rounds.begin_round()
        lookup_page, slot = header.lookup_page_for(source_region, target_region)
        lookup_bytes = rounds.fetch(LOOKUP_FILE, lookup_page)
        with timer:
            index_start_page = read_lookup_entry(lookup_bytes, slot)

        # round 3: r pages of the combined file at the entry's position
        rounds.begin_round()
        window = header.index_pages_starting_at(index_start_page)
        fetched_index = rounds.fetch_many(COMBINED_FILE, window)
        rounds.pad(COMBINED_FILE, header.index_fetch_pages)
        key = (source_region, target_region)
        with timer:
            entry = decode_index_entry(fetched_index, key)
            if entry is None:
                raise SchemeError(f"missing combined-index entry for pair {key}")

        # round 4: continuation pages (subgraph case), region data pages, dummies
        rounds.begin_round()
        continuation_pages: list = []
        if entry.edges is not None and header.index_continuation_pages > 0:
            first_continuation = window[-1] + 1 if window else 0
            last_continuation = min(
                header.num_index_pages, first_continuation + header.index_continuation_pages
            )
            continuation = list(range(first_continuation, last_continuation))
            continuation_pages = rounds.fetch_many(COMBINED_FILE, continuation)
        if entry.regions is not None:
            regions_to_fetch = sorted(set(entry.regions) | {source_region, target_region})
        else:
            regions_to_fetch = sorted({source_region, target_region})
        payloads = []
        for region_id in regions_to_fetch:
            pages = rounds.fetch_many(COMBINED_FILE, header.data_pages_for_region(region_id))
            payloads.append(pages)
        rounds.pad(COMBINED_FILE, header.data_round_pages)
        is_subgraph_entry = entry.edges is not None
        round3_entry = entry

        def solve() -> QueryResult:
            with timer:
                if is_subgraph_entry:
                    # continuation pages may extend the entry; re-decode from
                    # the full page list (skipped on an assembly-cache hit)
                    index_pages = list(fetched_index) + continuation_pages
                    graph = assembly.assemble_passage_csr(
                        payloads,
                        index_pages,
                        key,
                        entry=None if continuation_pages else round3_entry,
                    )
                else:
                    graph = assembly.assemble_region_csr(payloads)
                path = csr_shortest_path(graph, source, target)
            return self.finish_query(path, trace, timer.seconds)

        def finish(path, solve_seconds: float) -> QueryResult:
            return self.finish_query(path, trace, timer.seconds + solve_seconds)

        if is_subgraph_entry:
            all_index_pages = list(fetched_index) + continuation_pages
            remote = RemoteSolve(
                assembly.solve_passage_query,
                (
                    payloads,
                    all_index_pages,
                    key,
                    source,
                    target,
                    None if continuation_pages else round3_entry,
                ),
                assembly.passage_cache_key(payloads, all_index_pages, key),
            )
        else:
            remote = RemoteSolve(
                assembly.solve_region_query,
                (payloads, source, target),
                assembly.region_cache_key(payloads),
            )
        return PreparedQuery(solve, remote=remote, finish=finish)
