"""Arc-flag baseline (AF) — Section 4 of the paper.

AF stores with every edge a bit vector holding one bit per region; processing
a query towards a destination in region ``j`` only relaxes edges whose ``j``
bit is set.  Region data (adjacency lists plus the edge bit vectors) no longer
fits one page per region, so every region is allocated a fixed number of pages
that are retrieved together whenever the search first touches the region.

Like LM, the fixed query plan forces every query to pay for the worst case,
which makes AF read a large fraction of the database per query.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..costmodel import DEFAULT_SPEC, SystemSpec
from ..exceptions import PlanViolationError, SchemeError
from ..network import NodeId, Path, RoadNetwork, shortest_path
from ..partition import (
    BorderNodeIndex,
    Partitioning,
    compute_border_nodes,
    packed_kdtree_partition,
)
from ..precompute import ArcFlagIndex, build_arc_flags
from ..storage import Database, RecordWriter
from .base import QueryResult, Scheme, Timer
from .files import DATA_FILE, HeaderInfo, lookup_entries_per_page
from .landmark_scheme import generate_plan_pairs
from .plan import QueryPlan, RoundSpec

_PAYLOAD_RESERVE = 8


def _encode_arcflag_region(
    network: RoadNetwork, flags: ArcFlagIndex, node_ids: Iterable[NodeId]
) -> bytes:
    node_ids = list(node_ids)
    writer = RecordWriter()
    writer.varint(len(node_ids))
    for node_id in node_ids:
        node = network.node(node_id)
        writer.uint32(node_id).float32(node.x).float32(node.y)
        neighbors = network.neighbors(node_id)
        writer.varint(len(neighbors))
        for neighbor, weight in neighbors:
            writer.uint32(neighbor).float32(weight)
            writer.raw(flags.bit_vector(node_id, neighbor))
    return writer.getvalue()


class ArcFlagScheme(Scheme):
    """The Arc-flag (AF) baseline."""

    name = "AF"

    def __init__(
        self,
        network: RoadNetwork,
        database: Database,
        plan: QueryPlan,
        header: HeaderInfo,
        partitioning: Partitioning,
        flags: ArcFlagIndex,
        pages_per_region: int,
        max_regions: int,
        spec: SystemSpec = DEFAULT_SPEC,
    ) -> None:
        super().__init__(network, database, plan, spec)
        self.header = header
        self.partitioning = partitioning
        self.flags = flags
        self.pages_per_region = pages_per_region
        self.max_regions = max_regions

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        network: RoadNetwork,
        spec: SystemSpec = DEFAULT_SPEC,
        plan_pairs: Optional[Sequence[Tuple[NodeId, NodeId]]] = None,
        partitioning: Optional[Partitioning] = None,
        border_index: Optional[BorderNodeIndex] = None,
        flags: Optional[ArcFlagIndex] = None,
    ) -> "ArcFlagScheme":
        """Build the AF baseline (the number of regions is the flag-vector width)."""
        page_size = spec.page_size
        if partitioning is None:
            partitioning = packed_kdtree_partition(network, page_size - _PAYLOAD_RESERVE)
        if border_index is None:
            border_index = compute_border_nodes(network, partitioning)
        if flags is None:
            flags = build_arc_flags(network, partitioning, border_index)

        payloads = {
            region.region_id: _encode_arcflag_region(network, flags, region.node_ids)
            for region in partitioning.regions()
        }
        pages_per_region = max(
            1, max((len(p) + page_size - 1) // page_size for p in payloads.values())
        )

        database = Database(page_size)
        data_file = database.create_file(DATA_FILE)
        for region in partitioning.regions():
            payload = payloads[region.region_id]
            for chunk_start in range(0, pages_per_region * page_size, page_size):
                chunk = payload[chunk_start:chunk_start + page_size]
                page = data_file.new_page()
                if chunk:
                    page.append(chunk)

        if plan_pairs is None:
            plan_pairs = generate_plan_pairs(network)
        max_regions = 2
        for source, target in plan_pairs:
            touched = cls._regions_touched(network, partitioning, flags, source, target)
            max_regions = max(max_regions, len(touched))

        rounds = [
            RoundSpec(includes_header=True),
            RoundSpec(fetches=((DATA_FILE, 2 * pages_per_region),)),
        ]
        rounds.extend(
            RoundSpec(fetches=((DATA_FILE, pages_per_region),))
            for _ in range(max_regions - 2)
        )
        plan = QueryPlan.from_rounds(rounds)

        header = HeaderInfo(
            scheme_name=cls.name,
            page_size=page_size,
            num_regions=partitioning.num_regions,
            data_file=DATA_FILE,
            index_file=DATA_FILE,
            lookup_file=DATA_FILE,
            data_pages_per_region=pages_per_region,
            data_page_offset=0,
            lookup_entries_per_page=lookup_entries_per_page(page_size),
            index_fetch_pages=0,
            data_round_pages=max_regions * pages_per_region,
            num_index_pages=0,
            num_data_pages=data_file.num_pages,
            num_lookup_pages=0,
            tree_splits=partitioning.tree_splits(),
            plan=plan,
        )
        database.set_header(header.encode())
        return cls(
            network,
            database,
            plan,
            header,
            partitioning,
            flags,
            pages_per_region,
            max_regions,
            spec,
        )

    # ------------------------------------------------------------------ #
    # flag-restricted search
    # ------------------------------------------------------------------ #
    @staticmethod
    def _restricted_network(
        network: RoadNetwork, flags: ArcFlagIndex, destination_region: int
    ) -> RoadNetwork:
        """The subgraph of edges whose flag for ``destination_region`` is set."""
        restricted = RoadNetwork()
        for node in network.nodes():
            restricted.add_node(node.node_id, node.x, node.y)
        for edge in network.edges():
            if flags.is_useful(edge.source, edge.target, destination_region):
                restricted.add_edge(edge.source, edge.target, edge.weight)
        return restricted

    @classmethod
    def _regions_touched(
        cls,
        network: RoadNetwork,
        partitioning: Partitioning,
        flags: ArcFlagIndex,
        source: NodeId,
        target: NodeId,
    ) -> List[int]:
        source_region = partitioning.region_of_node(source)
        target_region = partitioning.region_of_node(target)
        touched: List[int] = [source_region]
        if target_region not in touched:
            touched.append(target_region)
        seen = set(touched)
        restricted = cls._restricted_network(network, flags, target_region)

        from ..network import SearchStats, dijkstra_tree

        stats = SearchStats()
        dijkstra_tree(restricted, source, targets=[target], stats=stats)
        for node_id in stats.visited_nodes:
            region = partitioning.region_of_node(node_id)
            if region not in seen:
                seen.add(region)
                touched.append(region)
        return touched

    # ------------------------------------------------------------------ #
    # query processing
    # ------------------------------------------------------------------ #
    def query(self, source: NodeId, target: NodeId) -> QueryResult:
        from ..pir import AccessTrace

        trace = AccessTrace()
        rounds = self.new_round_manager(trace)
        timer = Timer()

        rounds.begin_round()
        header_bytes = rounds.download_header()
        with timer:
            header = HeaderInfo.decode(header_bytes)
            target_region = self.partitioning.region_of_node(target)
            restricted = self._restricted_network(self.network, self.flags, target_region)
            path = shortest_path(restricted, source, target)
            touched = self._regions_touched(
                self.network, self.partitioning, self.flags, source, target
            )
        if len(touched) > self.max_regions:
            raise PlanViolationError(
                f"query touches {len(touched)} regions but the derived plan only "
                f"covers {self.max_regions}; rebuild the scheme with this query in plan_pairs"
            )

        # round 2: source and destination regions
        rounds.begin_round()
        for region_id in touched[:2]:
            rounds.fetch_many(DATA_FILE, header.data_pages_for_region(region_id))
        rounds.pad(DATA_FILE, 2 * self.pages_per_region)

        # subsequent rounds: one region per round, then dummy rounds
        for region_id in touched[2:]:
            rounds.begin_round()
            rounds.fetch_many(DATA_FILE, header.data_pages_for_region(region_id))
            rounds.pad(DATA_FILE, self.pages_per_region)
        for _ in range(self.max_regions - max(len(touched), 2)):
            rounds.begin_round()
            rounds.pad(DATA_FILE, self.pages_per_region)

        return self.finish_query(path, trace, timer.seconds)
