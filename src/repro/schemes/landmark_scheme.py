"""Landmark baseline (LM) — Section 4 of the paper.

LM adapts the Landmark/ALT pre-computation to the private setting: every node
stores a vector of shortest-path costs to a small set of anchor nodes, and an
A* search guided by the triangle-inequality lower bound expands from the
source towards the destination.  The network is partitioned into one-page
regions; whenever the search first touches a region, the corresponding region
data page is fetched through the PIR interface in a new round.

Because the query plan must cover the worst query, LM ends up fetching a large
fraction of the database for *every* query, which is exactly the weakness the
paper's CI/PI schemes address.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence, Tuple

from ..costmodel import DEFAULT_SPEC, SystemSpec
from ..exceptions import PlanViolationError, SchemeError
from ..network import NodeId, RoadNetwork, astar_search
from ..partition import Partitioning, node_record_size, packed_kdtree_partition
from ..precompute import LandmarkIndex, build_landmark_index
from ..storage import Database, RecordWriter
from .base import QueryResult, Scheme, Timer
from .files import DATA_FILE, HeaderInfo, lookup_entries_per_page
from .plan import QueryPlan, RoundSpec

_PAYLOAD_RESERVE = 8


def _landmark_size_fn(landmarks: LandmarkIndex):
    """Node-record size including the landmark vector."""

    def size_fn(network: RoadNetwork, node_id: NodeId) -> int:
        return node_record_size(network, node_id) + 4 * landmarks.num_anchors

    return size_fn


def _encode_landmark_region(
    network: RoadNetwork, landmarks: LandmarkIndex, node_ids: Iterable[NodeId]
) -> bytes:
    node_ids = list(node_ids)
    writer = RecordWriter()
    writer.varint(len(node_ids))
    for node_id in node_ids:
        node = network.node(node_id)
        writer.uint32(node_id).float32(node.x).float32(node.y)
        neighbors = network.neighbors(node_id)
        writer.varint(len(neighbors))
        for neighbor, weight in neighbors:
            writer.uint32(neighbor).float32(weight)
        for cost in landmarks.vector(node_id):
            writer.float32(cost if cost != float("inf") else 3.4e38)
    return writer.getvalue()


def generate_plan_pairs(
    network: RoadNetwork, count: int = 300, seed: int = 7
) -> List[Tuple[NodeId, NodeId]]:
    """A seeded sample of source/destination pairs used to derive baseline plans."""
    rng = random.Random(seed)
    node_ids = list(network.node_ids())
    pairs = []
    for _ in range(count):
        source = rng.choice(node_ids)
        target = rng.choice(node_ids)
        pairs.append((source, target))
    return pairs


class LandmarkScheme(Scheme):
    """The Landmark (LM) baseline."""

    name = "LM"

    def __init__(
        self,
        network: RoadNetwork,
        database: Database,
        plan: QueryPlan,
        header: HeaderInfo,
        partitioning: Partitioning,
        landmarks: LandmarkIndex,
        max_pages: int,
        spec: SystemSpec = DEFAULT_SPEC,
    ) -> None:
        super().__init__(network, database, plan, spec)
        self.header = header
        self.partitioning = partitioning
        self.landmarks = landmarks
        self.max_pages = max_pages

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        network: RoadNetwork,
        spec: SystemSpec = DEFAULT_SPEC,
        num_landmarks: int = 5,
        plan_pairs: Optional[Sequence[Tuple[NodeId, NodeId]]] = None,
        landmark_seed: int = 0,
    ) -> "LandmarkScheme":
        """Build the LM baseline with ``num_landmarks`` anchors.

        ``plan_pairs`` is the query sample over which the (fixed) query plan is
        derived; the paper derives it over all source/destination pairs, which
        is intractable here, so a large seeded sample plus all evaluated
        workload queries is used instead.
        """
        page_size = spec.page_size
        landmarks = build_landmark_index(network, num_landmarks, seed=landmark_seed)
        size_fn = _landmark_size_fn(landmarks)
        partitioning = packed_kdtree_partition(network, page_size - _PAYLOAD_RESERVE, size_fn)

        database = Database(page_size)
        data_file = database.create_file(DATA_FILE)
        for region in partitioning.regions():
            payload = _encode_landmark_region(network, landmarks, region.node_ids)
            if len(payload) > page_size:
                raise SchemeError(
                    f"LM region {region.region_id} does not fit a page ({len(payload)} bytes)"
                )
            page = data_file.new_page()
            page.append(payload)

        if plan_pairs is None:
            plan_pairs = generate_plan_pairs(network)
        max_pages = 2
        for source, target in plan_pairs:
            touched = cls._regions_touched(network, partitioning, landmarks, source, target)
            max_pages = max(max_pages, len(touched))

        rounds = [RoundSpec(includes_header=True), RoundSpec(fetches=((DATA_FILE, 2),))]
        rounds.extend(RoundSpec(fetches=((DATA_FILE, 1),)) for _ in range(max_pages - 2))
        plan = QueryPlan.from_rounds(rounds)

        header = HeaderInfo(
            scheme_name=cls.name,
            page_size=page_size,
            num_regions=partitioning.num_regions,
            data_file=DATA_FILE,
            index_file=DATA_FILE,
            lookup_file=DATA_FILE,
            data_pages_per_region=1,
            data_page_offset=0,
            lookup_entries_per_page=lookup_entries_per_page(page_size),
            index_fetch_pages=0,
            data_round_pages=max_pages,
            num_index_pages=0,
            num_data_pages=data_file.num_pages,
            num_lookup_pages=0,
            tree_splits=partitioning.tree_splits(),
            plan=plan,
        )
        database.set_header(header.encode())
        return cls(network, database, plan, header, partitioning, landmarks, max_pages, spec)

    # ------------------------------------------------------------------ #
    # search simulation shared by plan derivation and query processing
    # ------------------------------------------------------------------ #
    @staticmethod
    def _regions_touched(
        network: RoadNetwork,
        partitioning: Partitioning,
        landmarks: LandmarkIndex,
        source: NodeId,
        target: NodeId,
    ) -> List[int]:
        """Regions in first-touch order: source and destination regions first,
        then every region the guided A* search settles a node in."""
        source_region = partitioning.region_of_node(source)
        target_region = partitioning.region_of_node(target)
        touched: List[int] = [source_region]
        if target_region not in touched:
            touched.append(target_region)
        seen = set(touched)

        def on_settle(node_id: NodeId) -> None:
            region = partitioning.region_of_node(node_id)
            if region not in seen:
                seen.add(region)
                touched.append(region)

        astar_search(
            network, source, target, heuristic=landmarks.heuristic_for(target), on_settle=on_settle
        )
        return touched

    # ------------------------------------------------------------------ #
    # query processing
    # ------------------------------------------------------------------ #
    def query(self, source: NodeId, target: NodeId) -> QueryResult:
        from ..pir import AccessTrace

        trace = AccessTrace()
        rounds = self.new_round_manager(trace)
        timer = Timer()

        # round 1: header download and region mapping
        rounds.begin_round()
        header_bytes = rounds.download_header()
        with timer:
            header = HeaderInfo.decode(header_bytes)
            path = astar_search(
                self.network, source, target, heuristic=self.landmarks.heuristic_for(target)
            )
            touched = self._regions_touched(
                self.network, self.partitioning, self.landmarks, source, target
            )
        if len(touched) > self.max_pages:
            raise PlanViolationError(
                f"query touches {len(touched)} regions but the derived plan only "
                f"covers {self.max_pages}; rebuild the scheme with this query in plan_pairs"
            )

        # round 2: source and destination regions
        rounds.begin_round()
        for region_id in touched[:2]:
            rounds.fetch(DATA_FILE, header.data_pages_for_region(region_id)[0])
        rounds.pad(DATA_FILE, 2)

        # subsequent rounds: one page per region touched by the search, then dummies
        for region_id in touched[2:]:
            rounds.begin_round()
            rounds.fetch(DATA_FILE, header.data_pages_for_region(region_id)[0])
        for _ in range(self.max_pages - max(len(touched), 2)):
            rounds.begin_round()
            rounds.pad(DATA_FILE, 1)

        return self.finish_query(path, trace, timer.seconds)
