"""Clustered Passage Index (PI*) — Section 6 of the paper.

PI* is the Passage Index scheme built over *clustered* regions: every region
of the packed KD-tree is allowed to occupy a fixed number of disk pages
(``cluster_pages``) instead of one.  Fewer, larger regions mean fewer border
nodes and far fewer pre-computed subgraphs, so the network index shrinks —
at the cost of fetching ``2 · cluster_pages`` region-data pages per query.

The cluster size is the knob that trades space for response time (Figure 11).

Query processing is inherited from :class:`PassageIndexScheme` and therefore
CSR-native: the fetched region pages and the passage-subgraph entry are
assembled directly into a :class:`~repro.network.indexed.CsrGraph` (see
:mod:`repro.schemes.assembly`), with no dict-based ``RoadNetwork`` round trip.
"""

from __future__ import annotations

from typing import Optional

from ..costmodel import DEFAULT_SPEC, SystemSpec
from ..network import RoadNetwork
from ..partition import BorderNodeIndex, Partitioning
from ..precompute import BorderProducts
from .pi import PassageIndexScheme


class ClusteredPassageIndexScheme(PassageIndexScheme):
    """The clustered Passage Index scheme (PI*)."""

    name = "PI*"

    @classmethod
    def build(  # type: ignore[override]
        cls,
        network: RoadNetwork,
        spec: SystemSpec = DEFAULT_SPEC,
        cluster_pages: int = 2,
        packed: bool = True,
        compress: bool = True,
        partitioning: Optional[Partitioning] = None,
        border_index: Optional[BorderNodeIndex] = None,
        products: Optional[BorderProducts] = None,
        store_backend: Optional[str] = None,
        store_dir=None,
    ) -> "ClusteredPassageIndexScheme":
        """Build PI* with ``cluster_pages`` region-data pages per region."""
        return super().build(
            network,
            spec=spec,
            packed=packed,
            compress=compress,
            pages_per_region=cluster_pages,
            partitioning=partitioning,
            border_index=border_index,
            products=products,
            store_backend=store_backend,
            store_dir=store_dir,
        )

    @property
    def cluster_pages(self) -> int:
        return self.header.data_pages_per_region
