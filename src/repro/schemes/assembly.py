"""CSR-native client-side subgraph assembly: the query-processing fast path.

After the PIR rounds of a query, the client holds byte payloads: region-data
page groups and (for the PI family) the network-index pages carrying a
passage-subgraph entry.  The functions here turn those bytes into a
searchable :class:`~repro.network.indexed.CsrGraph` *directly* — node-id
interning straight into flat arrays, no dict-based
:class:`~repro.network.RoadNetwork` intermediate — and memoise the assembled
graph in the engine's decode cache, keyed by the exact bytes that produced
it.  Within a workload, queries between the same region pair fetch identical
pages, so the per-query client cost of a repeated pair drops to one cache
probe plus the search itself.

The original dict-merge construction survives below as ``reference_*``
oracles (:func:`reference_region_graph`, :func:`reference_passage_graph`,
built on :func:`repro.partition.merge_region_payloads` and
:func:`subgraph_from_entry`); the property tests assert that the CSR-native
assembly returns identical costs, paths and traces.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

from ..exceptions import SchemeError
from ..network import RoadNetwork
from ..network.indexed import CsrBuilder, CsrGraph, csr_shortest_path
from ..partition import merge_region_payloads
from .files import current_decode_cache, decode_region_bytes
from .index_entries import IndexEntry, decode_index_entry

RegionPair = Tuple[int, int]

__all__ = [
    "assemble_passage_csr",
    "assemble_region_csr",
    "csr_shortest_path",
    "passage_cache_key",
    "reference_passage_graph",
    "reference_region_graph",
    "region_cache_key",
    "solve_passage_query",
    "solve_region_query",
    "subgraph_from_entry",
]


def _joined_payloads(payload_groups: Sequence[Sequence[bytes]]) -> Tuple[bytes, ...]:
    return tuple(b"".join(pages) for pages in payload_groups)


def _build_csr(
    joined: Sequence[bytes], entry: Optional[IndexEntry] = None
) -> CsrGraph:
    builder = CsrBuilder()
    for payload in joined:
        builder.add_payload(decode_region_bytes(payload))
    if entry is not None:
        # entry.edges is a frozenset; fix the insertion order so the CSR
        # adjacency layout is identical on every run and worker (I2)
        builder.add_edges(sorted(entry.edges))
    return builder.build()


def region_cache_key(payload_groups: Sequence[Sequence[bytes]]) -> Tuple:
    """The decode-cache key of a region-set query's assembled subgraph.

    Exposed so the engine can probe a worker's cache before shipping the
    solve phase to a process pool — a hit means the in-process solve is one
    cache probe, cheaper than any subprocess round trip.
    """
    return ("csr", None, _joined_payloads(payload_groups))


def passage_cache_key(
    payload_groups: Sequence[Sequence[bytes]],
    index_pages: Sequence[bytes],
    pair: RegionPair,
) -> Tuple:
    """The decode-cache key of a passage-subgraph query's assembled subgraph."""
    return ("csr", (pair, tuple(index_pages)), _joined_payloads(payload_groups))


def assemble_region_csr(payload_groups: Sequence[Sequence[bytes]]) -> CsrGraph:
    """The client search graph of a region-set query (CI, un-replaced HY pairs).

    ``payload_groups`` holds, per fetched region, the region-data pages in
    fetch order.  The result is cached (when a decode cache is installed)
    under the concatenated payload bytes; cached graphs are shared between
    queries and must be treated as read-only — searches allocate their own
    working state, so sharing is safe.
    """
    key = region_cache_key(payload_groups)
    joined = key[2]
    cache = current_decode_cache()
    if cache is None:
        return _build_csr(joined)
    csr = cache.get(key)
    if csr is None:
        csr = _build_csr(joined)
        cache.put(key, csr)
    return csr


def assemble_passage_csr(
    payload_groups: Sequence[Sequence[bytes]],
    index_pages: Sequence[bytes],
    pair: RegionPair,
    entry: Optional[IndexEntry] = None,
) -> CsrGraph:
    """The client search graph of a passage-subgraph query (PI, PI*, APX, HY).

    Region payloads are merged as in :func:`assemble_region_csr`, then the
    weighted edges of the pair's index entry are appended.  The entry is
    decoded from ``index_pages`` only when the assembled graph is not already
    cached (``entry`` may pass in an already-decoded entry to skip that work,
    e.g. HY's round-3 decode).  Raises :class:`~repro.exceptions.SchemeError`
    when the pages carry no passage-subgraph entry for ``pair``.
    """
    key = passage_cache_key(payload_groups, index_pages, pair)
    joined = key[2]
    cache = current_decode_cache()
    if cache is not None:
        csr = cache.get(key)
        if csr is not None:
            return csr
    if entry is None:
        entry = decode_index_entry(index_pages, pair)
    if entry is None or entry.edges is None:
        raise SchemeError("missing passage-subgraph entry for queried pair")
    csr = _build_csr(joined, entry)
    if cache is not None:
        cache.put(key, csr)
    return csr


# ---------------------------------------------------------------------- #
# remote solve phases (module-level so they pickle by reference; executed
# by the engine's process workers, see QueryEngine.run_batch(worker_mode=
# "process"))
# ---------------------------------------------------------------------- #
def solve_region_query(
    payload_groups: Sequence[Sequence[bytes]], source, target
) -> Tuple["Path", float]:
    """Decode, assemble and search a region-set query (CI, region-set HY).

    Takes only plain data (page bytes and node ids), so the whole CPU-bound
    solve phase can execute in a worker process; returns the path plus the
    solve wall time.  The search result is bit-identical to the in-process
    solve — assembly and search are deterministic functions of the bytes.
    """
    started = time.perf_counter()
    graph = assemble_region_csr(payload_groups)
    path = csr_shortest_path(graph, source, target)
    return path, time.perf_counter() - started


def solve_passage_query(
    payload_groups: Sequence[Sequence[bytes]],
    index_pages: Sequence[bytes],
    pair: RegionPair,
    source,
    target,
    entry: Optional[IndexEntry] = None,
) -> Tuple["Path", float]:
    """Decode, assemble and search a passage-subgraph query (PI, PI*, APX, HY)."""
    started = time.perf_counter()
    graph = assemble_passage_csr(payload_groups, index_pages, pair, entry)
    path = csr_shortest_path(graph, source, target)
    return path, time.perf_counter() - started


# ---------------------------------------------------------------------- #
# reference implementations (dict-based; kept as oracles for the property
# tests and as the PR-1 baseline of the scheme-query microbenchmark)
# ---------------------------------------------------------------------- #
def subgraph_from_entry(entry: IndexEntry, region_payloads) -> RoadNetwork:
    """Assemble the client-side graph from region data plus passage-subgraph edges.

    Passage nodes that appear in no fetched region are inserted at placeholder
    coordinates ``(0, 0)``; the graph is then flagged ``heuristic_safe=False``
    so geometric A* heuristics (which the placeholders would corrupt into
    inadmissibility) degrade to the zero heuristic instead of returning
    suboptimal paths.
    """
    graph = merge_region_payloads(region_payloads)
    if entry.edges is None:
        raise SchemeError("expected a passage-subgraph entry")
    for source, target, weight in sorted(entry.edges):
        if source not in graph:
            graph.add_node(source, 0.0, 0.0)
            graph.heuristic_safe = False
        if target not in graph:
            graph.add_node(target, 0.0, 0.0)
            graph.heuristic_safe = False
        if not graph.has_edge(source, target):
            graph.add_edge(source, target, weight)
    return graph


def reference_region_graph(payload_groups: Sequence[Sequence[bytes]]) -> RoadNetwork:
    """Dict-merge oracle for :func:`assemble_region_csr`."""
    decoded = [decode_region_bytes(b"".join(pages)) for pages in payload_groups]
    return merge_region_payloads(decoded)


def reference_passage_graph(
    payload_groups: Sequence[Sequence[bytes]],
    index_pages: Sequence[bytes],
    pair: RegionPair,
    entry: Optional[IndexEntry] = None,
) -> RoadNetwork:
    """Dict-merge oracle for :func:`assemble_passage_csr`."""
    if entry is None:
        entry = decode_index_entry(index_pages, pair)
    if entry is None or entry.edges is None:
        raise SchemeError("missing passage-subgraph entry for queried pair")
    decoded = [decode_region_bytes(b"".join(pages)) for pages in payload_groups]
    return subgraph_from_entry(entry, decoded)
