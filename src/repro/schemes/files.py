"""Builders and readers for the scheme database files.

Every scheme's database comprises (subsets of) four files:

* ``Fh`` (header)  — partitioning information, query plan and file metadata;
  downloaded in full by every client, never through the PIR interface.
* ``Fl`` (look-up) — a dense index over ``Fi``: one page number per region pair.
* ``Fi`` (network index) — region sets / passage subgraphs (see
  :mod:`repro.schemes.index_entries`).
* ``Fd`` (region data) — the actual network information of each region.

File names are fixed constants so query plans can reference them.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import SchemeError, StorageError
from ..network import RoadNetwork
from ..partition import Partitioning, encode_region_payload, decode_region_payload
from ..partition.regions import LeafNode, Partitioning as _Partitioning, SplitNode, TreeNode
from ..storage import Database, PageFile, RecordReader, RecordWriter
from .plan import QueryPlan

#: Fixed file names used across schemes.
LOOKUP_FILE = "lookup"
INDEX_FILE = "index"
DATA_FILE = "data"
COMBINED_FILE = "combined"

#: Size in bytes of one look-up entry (a page number in the network index file).
LOOKUP_ENTRY_BYTES = 4

#: Client-side decode cache installed by the query engine (None = disabled).
#: Maps ``("header", bytes)`` to a decoded :class:`HeaderInfo`, ``("region",
#: bytes)`` to a decoded region payload, and ``("csr", ...)`` to an assembled
#: query subgraph (see :mod:`repro.schemes.assembly`).  Cached objects are
#: treated as read-only by all query paths; the adversary-visible PIR fetches
#: still happen for every query, only the client-side decode work is shared.
#: Held in a :class:`~contextvars.ContextVar` so the parallel engine can
#: install one cache per worker context without the installs interfering —
#: every thread (and every engine) sees exactly the cache it installed.
_decode_cache_var: ContextVar = ContextVar("repro_decode_cache", default=None)


@contextmanager
def decode_cache_scope(cache):
    """Install ``cache`` as the decode cache for the duration of the block."""
    token = _decode_cache_var.set(cache)
    try:
        yield cache
    finally:
        _decode_cache_var.reset(token)


def current_decode_cache():
    """The decode cache installed in the current context (None = disabled)."""
    return _decode_cache_var.get()


# ---------------------------------------------------------------------- #
# header file (Fh)
# ---------------------------------------------------------------------- #
@dataclass
class HeaderInfo:
    """Everything a client learns from the header file."""

    scheme_name: str
    page_size: int
    num_regions: int
    data_file: str
    index_file: str
    lookup_file: str
    data_pages_per_region: int
    data_page_offset: int
    lookup_entries_per_page: int
    index_fetch_pages: int
    data_round_pages: int
    num_index_pages: int
    num_data_pages: int
    num_lookup_pages: int
    tree_splits: List[Tuple[int, int, float, int, int]]
    plan: QueryPlan
    #: Extra index pages fetched in the last round for multi-page subgraph
    #: entries (used by the HY combined file; zero elsewhere).
    index_continuation_pages: int = 0

    # -------------------------------------------------------------- #
    # client-side helpers
    # -------------------------------------------------------------- #
    def region_of_point(self, x: float, y: float) -> int:
        """Map Euclidean coordinates to a region id using the shipped split tree."""
        tree = getattr(self, "_split_tree", None)
        if tree is None:
            tree = _Partitioning.tree_from_splits(self.tree_splits)
            self._split_tree = tree
        return _descend(tree, x, y)

    def lookup_page_for(self, region_i: int, region_j: int) -> Tuple[int, int]:
        """The look-up file page holding the entry for ``(i, j)`` and the entry's slot."""
        index = region_i * self.num_regions + region_j
        return index // self.lookup_entries_per_page, index % self.lookup_entries_per_page

    def data_pages_for_region(self, region_id: int) -> List[int]:
        """Page numbers (in the data file) holding the region's network information."""
        first = self.data_page_offset + region_id * self.data_pages_per_region
        return list(range(first, first + self.data_pages_per_region))

    def index_pages_starting_at(self, first_page: int) -> List[int]:
        """The ``index_fetch_pages`` consecutive index pages the plan prescribes.

        When the entry starts close to the end of the file, the window is
        clamped so it still consists of existing pages (the boundary case of
        Section 5.4).
        """
        count = self.index_fetch_pages
        start = min(first_page, max(0, self.num_index_pages - count))
        end = min(self.num_index_pages, start + count)
        return list(range(start, end))

    def encode(self) -> bytes:
        writer = RecordWriter()
        writer.string(self.scheme_name)
        writer.uint32(self.page_size)
        writer.uint32(self.num_regions)
        writer.string(self.data_file)
        writer.string(self.index_file)
        writer.string(self.lookup_file)
        writer.uint32(self.data_pages_per_region)
        writer.uint32(self.data_page_offset)
        writer.uint32(self.lookup_entries_per_page)
        writer.uint32(self.index_fetch_pages)
        writer.uint32(self.data_round_pages)
        writer.uint32(self.num_index_pages)
        writer.uint32(self.num_data_pages)
        writer.uint32(self.num_lookup_pages)
        writer.uint32(self.index_continuation_pages)
        writer.varint(len(self.tree_splits))
        for _, axis, value, left, right in self.tree_splits:
            writer.varint(axis)
            writer.float64(value)
            writer.varint(left)
            writer.varint(right)
        writer.raw(self.plan.encode())
        return writer.getvalue()

    @staticmethod
    def decode(data: bytes) -> "HeaderInfo":
        cache = _decode_cache_var.get()
        if cache is not None:
            cached = cache.get(("header", data))
            if cached is not None:
                return cached
        reader = RecordReader(data)
        scheme_name = reader.string()
        page_size = reader.uint32()
        num_regions = reader.uint32()
        data_file = reader.string()
        index_file = reader.string()
        lookup_file = reader.string()
        data_pages_per_region = reader.uint32()
        data_page_offset = reader.uint32()
        lookup_entries_per_page = reader.uint32()
        index_fetch_pages = reader.uint32()
        data_round_pages = reader.uint32()
        num_index_pages = reader.uint32()
        num_data_pages = reader.uint32()
        num_lookup_pages = reader.uint32()
        index_continuation_pages = reader.uint32()
        split_count = reader.varint()
        tree_splits = []
        for index in range(split_count):
            axis = reader.varint()
            value = reader.float64()
            left = reader.varint()
            right = reader.varint()
            tree_splits.append((index, axis, value, left, right))
        plan = QueryPlan.decode(reader)
        header = HeaderInfo(
            scheme_name=scheme_name,
            page_size=page_size,
            num_regions=num_regions,
            data_file=data_file,
            index_file=index_file,
            lookup_file=lookup_file,
            data_pages_per_region=data_pages_per_region,
            data_page_offset=data_page_offset,
            lookup_entries_per_page=lookup_entries_per_page,
            index_fetch_pages=index_fetch_pages,
            data_round_pages=data_round_pages,
            num_index_pages=num_index_pages,
            num_data_pages=num_data_pages,
            num_lookup_pages=num_lookup_pages,
            tree_splits=tree_splits,
            plan=plan,
            index_continuation_pages=index_continuation_pages,
        )
        if cache is not None:
            cache.put(("header", data), header)
        return header


def _descend(tree: TreeNode, x: float, y: float) -> int:
    node = tree
    while isinstance(node, SplitNode):
        coordinate = x if node.axis == 0 else y
        node = node.left if coordinate < node.value else node.right
    if not isinstance(node, LeafNode):
        raise StorageError("malformed split tree in the header")
    return node.region_id


# ---------------------------------------------------------------------- #
# look-up file (Fl)
# ---------------------------------------------------------------------- #
def build_lookup_file(
    database: Database,
    num_regions: int,
    index_page_of_pair,
    file_name: str = LOOKUP_FILE,
) -> PageFile:
    """Build the dense look-up index over the network index file.

    ``index_page_of_pair`` is a callable ``(i, j) -> page number``.  Entries
    are stored in ascending ``(i, j)`` order, packed as many per page as fit.
    """
    lookup = database.create_file(file_name)
    entries_per_page = lookup.page_size // LOOKUP_ENTRY_BYTES
    page = None
    placed_in_page = 0
    for region_i in range(num_regions):
        for region_j in range(num_regions):
            if page is None or placed_in_page == entries_per_page:
                page = lookup.new_page()
                placed_in_page = 0
            writer = RecordWriter()
            writer.uint32(index_page_of_pair(region_i, region_j))
            page.append(writer.getvalue())
            placed_in_page += 1
    return lookup


def read_lookup_entry(page_bytes: bytes, slot: int) -> int:
    """Extract the ``slot``-th look-up entry (an ``Fi`` page number) from a page."""
    reader = RecordReader(page_bytes, offset=slot * LOOKUP_ENTRY_BYTES)
    return reader.uint32()


def lookup_entries_per_page(page_size: int) -> int:
    return page_size // LOOKUP_ENTRY_BYTES


# ---------------------------------------------------------------------- #
# region data file (Fd)
# ---------------------------------------------------------------------- #
def build_region_data_file(
    database: Database,
    network: RoadNetwork,
    partitioning: Partitioning,
    pages_per_region: int = 1,
    file_name: str = DATA_FILE,
    page_file: Optional[PageFile] = None,
) -> PageFile:
    """Write every region's network information into ``pages_per_region`` pages.

    Region ``r`` occupies pages ``[offset + r·k, offset + (r+1)·k)`` of the
    file, where ``k = pages_per_region`` and ``offset`` is the number of pages
    already present in ``page_file`` (non-zero only for the HY combined file).
    """
    data_file = page_file if page_file is not None else database.create_file(file_name)
    for region in partitioning.regions():
        payload = encode_region_payload(network, region.node_ids)
        capacity = pages_per_region * data_file.page_size
        if len(payload) > capacity:
            raise SchemeError(
                f"region {region.region_id} payload of {len(payload)} bytes exceeds its "
                f"{pages_per_region} page(s) ({capacity} bytes)"
            )
        for chunk_start in range(0, pages_per_region * data_file.page_size, data_file.page_size):
            chunk = payload[chunk_start:chunk_start + data_file.page_size]
            page = data_file.new_page()
            if chunk:
                page.append(chunk)
    return data_file


def decode_region_pages(pages: Sequence[bytes]):
    """Decode the node records of one region from its (concatenated) pages.

    When the query engine has a decode cache installed, identical page
    contents (the common case for repeated region fetches within a workload)
    are decoded once and shared; callers must not mutate the returned payload.
    """
    return decode_region_bytes(b"".join(pages))


def decode_region_bytes(payload: bytes):
    """Decode one region's already-concatenated payload bytes (cached)."""
    cache = _decode_cache_var.get()
    if cache is None:
        return decode_region_payload(payload)
    decoded = cache.get(("region", payload))
    if decoded is None:
        decoded = decode_region_payload(payload)
        cache.put(("region", payload), decoded)
    return decoded
