"""Obfuscation baseline (OBF) — the prior art of Lee et al. [22].

The client hides the real source ``s`` and destination ``t`` inside
obfuscation sets ``S`` and ``T`` (decoys drawn uniformly from the network, as
in Section 7.3 of the paper, to leak as little as possible).  The LBS — which
operates on plaintext data — computes all ``|S|·|T|`` shortest paths and ships
them back; the client keeps the one for the real pair.

OBF provides only weak privacy (the LBS learns a finite candidate set for
``s`` and ``t`` and strong clues about the path); it is measured here purely
as the performance yard-stick of Figure 6.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..costmodel import CostModel, DEFAULT_SPEC, ResponseTime, SystemSpec
from ..exceptions import SchemeError
from ..network import NodeId, Path, RoadNetwork, SearchStats, shortest_path


@dataclass
class ObfuscationResult:
    """Outcome of one obfuscated shortest-path query."""

    path: Path
    response: ResponseTime
    obfuscation_set_size: int
    candidate_paths: int

    @property
    def total_seconds(self) -> float:
        return self.response.total_s


class ObfuscationScheme:
    """The OBF baseline (weak privacy; no PIR involved)."""

    name = "OBF"

    def __init__(
        self,
        network: RoadNetwork,
        spec: SystemSpec = DEFAULT_SPEC,
        set_size: int = 20,
        seed: int = 0,
    ) -> None:
        if set_size < 1:
            raise SchemeError("the obfuscation set size must be at least 1")
        self.network = network
        self.spec = spec
        self.set_size = set_size
        self.cost_model = CostModel(spec)
        self._rng = random.Random(seed)
        #: Bytes used to encode one edge of a returned path.
        self.bytes_per_path_edge = 8
        #: Bytes used to upload one candidate location.
        self.bytes_per_location = 16

    def choose_decoys(self, exclude: NodeId, count: int) -> List[NodeId]:
        """Decoy locations drawn uniformly from the whole network."""
        node_ids = [node_id for node_id in self.network.node_ids() if node_id != exclude]
        if count > len(node_ids):
            raise SchemeError("not enough nodes to draw the requested number of decoys")
        return self._rng.sample(node_ids, count)

    def query(self, source: NodeId, target: NodeId) -> ObfuscationResult:
        """Answer a query through obfuscation sets of the configured size."""
        sources = [source] + self.choose_decoys(source, self.set_size - 1)
        targets = [target] + self.choose_decoys(target, self.set_size - 1)
        candidate_paths = len(sources) * len(targets)

        # The client-relevant path is computed exactly; the server cost of the
        # remaining |S|·|T| - 1 paths is modelled from the measured search size.
        stats = SearchStats()
        path = shortest_path(self.network, source, target, stats=stats)
        settled_per_search = max(stats.settled_nodes, 1)

        server = self.cost_model.plaintext_server_work(settled_per_search * candidate_paths)
        upload_bytes = (len(sources) + len(targets)) * self.bytes_per_location
        download_bytes = candidate_paths * max(path.num_edges, 1) * self.bytes_per_path_edge
        communication = self.cost_model.plaintext_transfer(upload_bytes + download_bytes, rounds=1)
        response = server + communication

        return ObfuscationResult(
            path=path,
            response=response,
            obfuscation_set_size=self.set_size,
            candidate_paths=candidate_paths,
        )
