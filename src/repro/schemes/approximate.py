"""Approximate Passage Index (APX) — the paper's future-work direction.

The conclusions of the paper name "approximate schemes with bounded cost
deviation from the actual shortest path" as an open direction for reducing the
space and time overheads of the exact schemes.  APX realises that direction on
top of the Passage Index machinery:

* pre-computation materialises ``(1 + ε)``-approximate passage subgraphs (see
  :mod:`repro.precompute.sparsify`) instead of the exact ones, which shrinks
  the network index file, and
* query processing is byte-for-byte the same three-round protocol as PI, so
  the privacy guarantee (Theorem 1) is untouched — the approximation only
  affects the cost of the returned path, never what the adversary observes.

``ε = 0`` keeps results exact while still deduplicating border paths that are
covered by other border paths of the same region pair.

Query processing is inherited from :class:`PassageIndexScheme` and therefore
CSR-native (see :mod:`repro.schemes.assembly`): the retrieved pages are
assembled straight into flat CSR arrays and searched there — the
approximation affects only which edges the index stores, never the client
pipeline.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from ..costmodel import DEFAULT_SPEC, SystemSpec
from ..exceptions import SchemeError
from ..network import NodeId, RoadNetwork, shortest_path_cost
from ..partition import (
    BorderNodeIndex,
    Partitioning,
    compute_border_nodes,
    packed_kdtree_partition,
    plain_kdtree_partition,
)
from ..precompute import compute_approximate_passage_subgraphs
from .pi import PassageIndexScheme


class ApproximatePassageIndexScheme(PassageIndexScheme):
    """PI with ``(1 + ε)``-approximate passage subgraphs (smaller index)."""

    name = "APX"

    #: Worst-case deviation bound of the paths this instance returns.
    epsilon: float = 0.0

    @classmethod
    def build(  # type: ignore[override]
        cls,
        network: RoadNetwork,
        epsilon: float = 0.1,
        spec: SystemSpec = DEFAULT_SPEC,
        packed: bool = True,
        compress: bool = True,
        pages_per_region: int = 1,
        partitioning: Optional[Partitioning] = None,
        border_index: Optional[BorderNodeIndex] = None,
    ) -> "ApproximatePassageIndexScheme":
        """Build the APX database.

        ``epsilon`` is the cost-deviation budget: every returned path costs at
        most ``(1 + epsilon)`` times the true shortest path.  The remaining
        knobs mirror :meth:`PassageIndexScheme.build`.
        """
        if epsilon < 0:
            raise SchemeError(f"epsilon must be non-negative, got {epsilon}")
        if partitioning is None:
            partition_fn = packed_kdtree_partition if packed else plain_kdtree_partition
            capacity = pages_per_region * spec.page_size - 8
            partitioning = partition_fn(network, capacity)
        if border_index is None:
            border_index = compute_border_nodes(network, partitioning)
        products = compute_approximate_passage_subgraphs(
            network, partitioning, border_index, epsilon
        )
        scheme = super().build(
            network,
            spec=spec,
            packed=packed,
            compress=compress,
            pages_per_region=pages_per_region,
            partitioning=partitioning,
            border_index=border_index,
            products=products.as_border_products(),
        )
        scheme.epsilon = epsilon
        scheme.sparsification_stats = products.stats
        return scheme

    @property
    def deviation_bound(self) -> float:
        """Guaranteed upper bound on (returned path cost / shortest path cost)."""
        return 1.0 + self.epsilon


def measure_cost_deviation(
    scheme: PassageIndexScheme,
    network: RoadNetwork,
    queries: Iterable[Tuple[NodeId, NodeId]],
) -> Sequence[float]:
    """Empirical deviation ratios (returned cost / exact cost) over a workload.

    Pairs whose exact cost is zero (source equals destination) are reported as
    a ratio of ``1.0``.
    """
    ratios = []
    for source, target in queries:
        result = scheme.query(source, target)
        exact = shortest_path_cost(network, source, target)
        if exact == 0:
            ratios.append(1.0)
        else:
            ratios.append(result.path.cost / exact)
    return ratios
