"""Passage Index (PI) scheme — Section 6 of the paper.

PI materialises, for every region pair, the exact subgraph ``G_ij`` formed by
all edges appearing in border-to-border shortest paths.  Queries then need
only three rounds: header, one look-up page, and a final round that fetches
``h`` network-index pages (``h`` = the largest number of pages any subgraph
spans) plus the two region-data pages of the source and destination regions.

PI trades a much larger network index for far fewer PIR accesses, which makes
it the fastest scheme wherever its index fits within the PIR interface's file
size limit.
"""

from __future__ import annotations

from typing import Optional

from ..costmodel import DEFAULT_SPEC, SystemSpec
from ..exceptions import SchemeError
from ..network import NodeId, RoadNetwork
from ..partition import (
    BorderNodeIndex,
    Partitioning,
    compute_border_nodes,
    packed_kdtree_partition,
    plain_kdtree_partition,
)
from ..precompute import BorderProducts, compute_border_products
from ..storage import Database
from . import assembly
from .assembly import csr_shortest_path, subgraph_from_entry
from .base import PreparedQuery, QueryResult, RemoteSolve, Scheme, Timer
from .files import (
    DATA_FILE,
    HeaderInfo,
    INDEX_FILE,
    LOOKUP_FILE,
    build_lookup_file,
    build_region_data_file,
    lookup_entries_per_page,
    read_lookup_entry,
)
from .index_entries import IndexFileBuilder
from .plan import QueryPlan, RoundSpec

__all__ = ["PassageIndexScheme", "subgraph_from_entry"]

_PAYLOAD_RESERVE = 8


class PassageIndexScheme(Scheme):
    """The Passage Index scheme (PI)."""

    name = "PI"

    def __init__(
        self,
        network: RoadNetwork,
        database: Database,
        plan: QueryPlan,
        header: HeaderInfo,
        partitioning: Partitioning,
        spec: SystemSpec = DEFAULT_SPEC,
    ) -> None:
        super().__init__(network, database, plan, spec)
        self.header = header
        self.partitioning = partitioning

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        network: RoadNetwork,
        spec: SystemSpec = DEFAULT_SPEC,
        packed: bool = True,
        compress: bool = True,
        pages_per_region: int = 1,
        partitioning: Optional[Partitioning] = None,
        border_index: Optional[BorderNodeIndex] = None,
        products: Optional[BorderProducts] = None,
        store_backend: Optional[str] = None,
        store_dir=None,
    ) -> "PassageIndexScheme":
        """Build the PI database (see :meth:`ConciseIndexScheme.build` for the knobs).

        ``pages_per_region`` > 1 yields the clustered variant PI* of Section 6:
        regions hold several pages of data, which shrinks the network index at
        the cost of more region-data retrievals per query.
        """
        if pages_per_region < 1:
            raise SchemeError("pages_per_region must be at least 1")
        page_size = spec.page_size
        capacity = pages_per_region * page_size - _PAYLOAD_RESERVE
        if partitioning is None:
            partition_fn = packed_kdtree_partition if packed else plain_kdtree_partition
            partitioning = partition_fn(network, capacity)
        if border_index is None:
            border_index = compute_border_nodes(network, partitioning)
        if products is None or not products.passage_subgraphs:
            products = compute_border_products(
                network,
                partitioning,
                border_index,
                want_region_sets=False,
                want_subgraphs=True,
            )

        weights = {
            (edge.source, edge.target): edge.weight for edge in network.edges()
        }

        database = Database(page_size, store_backend=store_backend, store_dir=store_dir)
        index_file = database.create_file(INDEX_FILE)
        builder = IndexFileBuilder(index_file, compress=compress)
        num_regions = partitioning.num_regions
        for region_i in range(num_regions):
            for region_j in range(num_regions):
                edges = products.passage_subgraph(region_i, region_j)
                weighted = [(u, v, weights[(u, v)]) for u, v in edges]
                builder.add_subgraph(region_i, region_j, weighted)
        build_lookup_file(
            database,
            num_regions,
            lambda i, j: builder.location_of((i, j)).start_page,
        )
        build_region_data_file(
            database, network, partitioning, pages_per_region=pages_per_region
        )

        index_fetch_pages = builder.max_page_span
        data_round_pages = 2 * pages_per_region
        plan = QueryPlan.from_rounds(
            [
                RoundSpec(includes_header=True),
                RoundSpec(fetches=((LOOKUP_FILE, 1),)),
                RoundSpec(
                    fetches=((INDEX_FILE, index_fetch_pages), (DATA_FILE, data_round_pages))
                ),
            ]
        )
        header = HeaderInfo(
            scheme_name=cls.name,
            page_size=page_size,
            num_regions=num_regions,
            data_file=DATA_FILE,
            index_file=INDEX_FILE,
            lookup_file=LOOKUP_FILE,
            data_pages_per_region=pages_per_region,
            data_page_offset=0,
            lookup_entries_per_page=lookup_entries_per_page(page_size),
            index_fetch_pages=index_fetch_pages,
            data_round_pages=data_round_pages,
            num_index_pages=database.file(INDEX_FILE).num_pages,
            num_data_pages=database.file(DATA_FILE).num_pages,
            num_lookup_pages=database.file(LOOKUP_FILE).num_pages,
            tree_splits=partitioning.tree_splits(),
            plan=plan,
        )
        database.set_header(header.encode())
        return cls(network, database, plan, header, partitioning, spec)

    # ------------------------------------------------------------------ #
    # query processing
    # ------------------------------------------------------------------ #
    def query(self, source: NodeId, target: NodeId) -> QueryResult:
        return self.prepare_query(source, target).solve()

    def prepare_query(self, source: NodeId, target: NodeId) -> PreparedQuery:
        """All three PIR rounds; entry decode, CSR assembly and the search run
        in ``solve()`` (and are skipped entirely when the assembled subgraph
        of this region pair is already cached)."""
        from ..pir import AccessTrace

        trace = AccessTrace()
        rounds = self.new_round_manager(trace)
        timer = Timer()

        # round 1: header download and region mapping
        rounds.begin_round()
        header_bytes = rounds.download_header()
        with timer:
            header = HeaderInfo.decode(header_bytes)
            source_node = self.network.node(source)
            target_node = self.network.node(target)
            source_region = header.region_of_point(source_node.x, source_node.y)
            target_region = header.region_of_point(target_node.x, target_node.y)

        # round 2: one look-up page
        rounds.begin_round()
        lookup_page, slot = header.lookup_page_for(source_region, target_region)
        lookup_bytes = rounds.fetch(LOOKUP_FILE, lookup_page)
        with timer:
            index_start_page = read_lookup_entry(lookup_bytes, slot)

        # round 3: the subgraph pages plus the two region-data pages
        rounds.begin_round()
        index_pages = header.index_pages_starting_at(index_start_page)
        fetched_index = rounds.fetch_many(INDEX_FILE, index_pages)
        rounds.pad(INDEX_FILE, header.index_fetch_pages)
        payloads = []
        for region_id in sorted({source_region, target_region}):
            pages = rounds.fetch_many(DATA_FILE, header.data_pages_for_region(region_id))
            payloads.append(pages)
        rounds.pad(DATA_FILE, header.data_round_pages)

        def solve() -> QueryResult:
            with timer:
                graph = assembly.assemble_passage_csr(
                    payloads, fetched_index, (source_region, target_region)
                )
                path = csr_shortest_path(graph, source, target)
            return self.finish_query(path, trace, timer.seconds)

        def finish(path, solve_seconds: float) -> QueryResult:
            return self.finish_query(path, trace, timer.seconds + solve_seconds)

        remote = RemoteSolve(
            assembly.solve_passage_query,
            (payloads, fetched_index, (source_region, target_region), source, target),
            assembly.passage_cache_key(
                payloads, fetched_index, (source_region, target_region)
            ),
        )
        return PreparedQuery(solve, remote=remote, finish=finish)
