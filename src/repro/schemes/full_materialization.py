"""Full materialization analysis (Section 4).

The paper dismisses the "materialise every shortest path" approach because its
space requirement — roughly 20 GByte already for the smallest network
(Oldenburg, ~6K nodes) and growing cubically with the network size — exceeds
the maximum file size the PIR interface supports by orders of magnitude.  This
module reproduces that back-of-the-envelope analysis as code so the claim can
be checked and regenerated:

* :func:`estimate_full_materialization_bytes` measures the average number of
  nodes on a shortest path with a seeded sample of Dijkstra runs and scales it
  to all ``|V|²`` ordered pairs, and
* :func:`full_materialization_report` compares the estimate against the PIR
  interface's file-size limit for any of the Table 1 networks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..costmodel import DEFAULT_SPEC, SystemSpec
from ..exceptions import SchemeError
from ..network import RoadNetwork, dijkstra_tree

#: Bytes used to store one node identifier in a materialised path.
NODE_ID_BYTES = 4


@dataclass(frozen=True)
class FullMaterializationEstimate:
    """Space estimate for materialising all-pairs shortest paths."""

    num_nodes: int
    sampled_pairs: int
    mean_path_nodes: float
    total_bytes: int
    max_file_bytes: int

    @property
    def total_gib(self) -> float:
        return self.total_bytes / (1024.0 ** 3)

    @property
    def exceeds_pir_limit(self) -> bool:
        """Whether the materialisation cannot be served by the PIR interface."""
        return self.total_bytes > self.max_file_bytes

    @property
    def times_over_limit(self) -> float:
        """How many times larger than the PIR-supported maximum the file would be."""
        if self.max_file_bytes == 0:
            return float("inf")
        return self.total_bytes / self.max_file_bytes


def estimate_full_materialization_bytes(
    network: RoadNetwork,
    sample_sources: int = 20,
    seed: int = 7,
    spec: SystemSpec = DEFAULT_SPEC,
) -> FullMaterializationEstimate:
    """Estimate the space needed to materialise every shortest path in ``network``.

    A seeded sample of single-source shortest-path trees measures the mean
    number of nodes per path; the estimate is
    ``|V|² · mean_path_nodes · NODE_ID_BYTES``.
    """
    if sample_sources <= 0:
        raise SchemeError("sample_sources must be positive")
    num_nodes = network.num_nodes
    if num_nodes == 0:
        raise SchemeError("cannot analyse an empty network")

    rng = random.Random(seed)
    node_ids = sorted(network.node_ids())
    sources = rng.sample(node_ids, min(sample_sources, len(node_ids)))

    total_path_nodes = 0
    total_paths = 0
    for source in sources:
        tree = dijkstra_tree(network, source)
        # Number of nodes on the path to ``t`` equals the hop count plus one;
        # summing hop counts over the tree is done by walking parents once per
        # target, memoising depths.
        depths = {source: 0}

        def depth_of(node):
            trail = []
            current = node
            while current not in depths:
                trail.append(current)
                current = tree.parents[current]
            base = depths[current]
            for position, trail_node in enumerate(reversed(trail), start=1):
                depths[trail_node] = base + position
            return depths[node]

        for target in tree.distances:
            total_path_nodes += depth_of(target) + 1
            total_paths += 1

    mean_path_nodes = total_path_nodes / max(total_paths, 1)
    total_bytes = int(num_nodes * num_nodes * mean_path_nodes * NODE_ID_BYTES)
    return FullMaterializationEstimate(
        num_nodes=num_nodes,
        sampled_pairs=total_paths,
        mean_path_nodes=mean_path_nodes,
        total_bytes=total_bytes,
        max_file_bytes=spec.max_file_bytes,
    )


def scaled_estimate(
    estimate: FullMaterializationEstimate, target_nodes: int
) -> FullMaterializationEstimate:
    """Extrapolate an estimate to a network with ``target_nodes`` nodes.

    Pairs scale quadratically and the mean path length scales with the square
    root of the node count (planar road networks), which reproduces the
    paper's "increases cubicly" growth up to the exponent 2.5 vs 3 nuance.
    """
    if target_nodes <= 0:
        raise SchemeError("target_nodes must be positive")
    ratio = target_nodes / max(estimate.num_nodes, 1)
    mean_path_nodes = estimate.mean_path_nodes * (ratio ** 0.5)
    total_bytes = int(target_nodes * target_nodes * mean_path_nodes * NODE_ID_BYTES)
    return FullMaterializationEstimate(
        num_nodes=target_nodes,
        sampled_pairs=estimate.sampled_pairs,
        mean_path_nodes=mean_path_nodes,
        total_bytes=total_bytes,
        max_file_bytes=estimate.max_file_bytes,
    )


def full_materialization_report(
    network: RoadNetwork,
    paper_nodes: Optional[int] = None,
    spec: SystemSpec = DEFAULT_SPEC,
    sample_sources: int = 20,
    seed: int = 7,
) -> dict:
    """A flat report row: measured estimate plus the paper-scale extrapolation."""
    estimate = estimate_full_materialization_bytes(
        network, sample_sources=sample_sources, seed=seed, spec=spec
    )
    row = {
        "nodes": estimate.num_nodes,
        "mean_path_nodes": round(estimate.mean_path_nodes, 1),
        "total_gib": round(estimate.total_gib, 3),
        "exceeds_pir_limit": estimate.exceeds_pir_limit,
        "times_over_limit": round(estimate.times_over_limit, 1),
    }
    if paper_nodes is not None:
        scaled = scaled_estimate(estimate, paper_nodes)
        row["paper_scale_nodes"] = paper_nodes
        row["paper_scale_gib"] = round(scaled.total_gib, 1)
        row["paper_scale_times_over_limit"] = round(scaled.times_over_limit, 1)
    return row
