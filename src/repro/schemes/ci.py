"""Concise Index (CI) scheme — Section 5 of the paper.

CI keeps four files: header, look-up, network index (region sets ``S_ij``)
and region data.  Queries run in exactly four rounds:

1. download the header in full (no PIR),
2. fetch one page of the look-up file,
3. fetch ``p`` pages of the network index (``p`` = the largest number of
   pages any region set spans),
4. fetch ``m + 2`` pages of the region data file (``m`` = the largest region
   set cardinality), padded with dummy retrievals when fewer are needed.

The client then runs Dijkstra on the retrieved subgraph, which is guaranteed
to contain the shortest path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..costmodel import DEFAULT_SPEC, SystemSpec
from ..exceptions import SchemeError
from ..network import NodeId, RoadNetwork
from ..partition import (
    BorderNodeIndex,
    Partitioning,
    compute_border_nodes,
    packed_kdtree_partition,
    plain_kdtree_partition,
)
from ..precompute import BorderProducts, compute_border_products
from ..storage import Database
from . import assembly
from .assembly import csr_shortest_path
from .base import PreparedQuery, QueryResult, RemoteSolve, Scheme, Timer
from .files import (
    DATA_FILE,
    HeaderInfo,
    INDEX_FILE,
    LOOKUP_FILE,
    build_lookup_file,
    build_region_data_file,
    lookup_entries_per_page,
    read_lookup_entry,
)
from .index_entries import IndexFileBuilder, decode_index_entry
from .plan import QueryPlan, RoundSpec

#: Bytes reserved in each page for the region payload's own framing.
_PAYLOAD_RESERVE = 8


@dataclass
class CiBuildArtifacts:
    """Intermediate products that may be shared between scheme builds."""

    partitioning: Partitioning
    border_index: BorderNodeIndex
    products: BorderProducts


class ConciseIndexScheme(Scheme):
    """The Concise Index scheme (CI)."""

    name = "CI"

    def __init__(
        self,
        network: RoadNetwork,
        database: Database,
        plan: QueryPlan,
        header: HeaderInfo,
        partitioning: Partitioning,
        max_region_set_size: int,
        spec: SystemSpec = DEFAULT_SPEC,
    ) -> None:
        super().__init__(network, database, plan, spec)
        self.header = header
        self.partitioning = partitioning
        self.max_region_set_size = max_region_set_size

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        network: RoadNetwork,
        spec: SystemSpec = DEFAULT_SPEC,
        packed: bool = True,
        compress: bool = True,
        partitioning: Optional[Partitioning] = None,
        border_index: Optional[BorderNodeIndex] = None,
        products: Optional[BorderProducts] = None,
        store_backend: Optional[str] = None,
        store_dir=None,
    ) -> "ConciseIndexScheme":
        """Build the CI database for ``network``.

        ``packed``/``compress`` toggle the two optimisations of Sections 5.6
        and 5.5 (used by the CI-P and CI-C ablations).  Pre-computed
        artifacts can be passed in so that several schemes share them.
        ``store_backend``/``store_dir`` choose the page-store backend the
        database streams onto (memory/mmap/sqlite; see
        :mod:`repro.storage.stores`).
        """
        page_size = spec.page_size
        capacity = page_size - _PAYLOAD_RESERVE
        if partitioning is None:
            partition_fn = packed_kdtree_partition if packed else plain_kdtree_partition
            partitioning = partition_fn(network, capacity)
        if border_index is None:
            border_index = compute_border_nodes(network, partitioning)
        if products is None or not products.region_sets:
            products = compute_border_products(
                network, partitioning, border_index, want_region_sets=True
            )
        max_set_size = products.max_region_set_size()

        database = Database(page_size, store_backend=store_backend, store_dir=store_dir)
        index_file = database.create_file(INDEX_FILE)
        builder = IndexFileBuilder(
            index_file, compress=compress, max_region_set_size=max_set_size
        )
        num_regions = partitioning.num_regions
        for region_i in range(num_regions):
            for region_j in range(num_regions):
                builder.add_region_set(
                    region_i, region_j, products.region_set(region_i, region_j)
                )
        build_lookup_file(
            database,
            num_regions,
            lambda i, j: builder.location_of((i, j)).start_page,
        )
        build_region_data_file(database, network, partitioning, pages_per_region=1)

        index_fetch_pages = builder.max_page_span
        data_round_pages = max_set_size + 2
        plan = QueryPlan.from_rounds(
            [
                RoundSpec(includes_header=True),
                RoundSpec(fetches=((LOOKUP_FILE, 1),)),
                RoundSpec(fetches=((INDEX_FILE, index_fetch_pages),)),
                RoundSpec(fetches=((DATA_FILE, data_round_pages),)),
            ]
        )
        header = HeaderInfo(
            scheme_name=cls.name,
            page_size=page_size,
            num_regions=num_regions,
            data_file=DATA_FILE,
            index_file=INDEX_FILE,
            lookup_file=LOOKUP_FILE,
            data_pages_per_region=1,
            data_page_offset=0,
            lookup_entries_per_page=lookup_entries_per_page(page_size),
            index_fetch_pages=index_fetch_pages,
            data_round_pages=data_round_pages,
            num_index_pages=database.file(INDEX_FILE).num_pages,
            num_data_pages=database.file(DATA_FILE).num_pages,
            num_lookup_pages=database.file(LOOKUP_FILE).num_pages,
            tree_splits=partitioning.tree_splits(),
            plan=plan,
        )
        database.set_header(header.encode())
        return cls(network, database, plan, header, partitioning, max_set_size, spec)

    # ------------------------------------------------------------------ #
    # query processing (Section 5.4)
    # ------------------------------------------------------------------ #
    def query(self, source: NodeId, target: NodeId) -> QueryResult:
        return self.prepare_query(source, target).solve()

    def prepare_query(self, source: NodeId, target: NodeId) -> PreparedQuery:
        """All four PIR rounds; the CSR assembly and search run in ``solve()``."""
        from ..pir import AccessTrace

        trace = AccessTrace()
        rounds = self.new_round_manager(trace)
        timer = Timer()

        # round 1: header download and region mapping
        rounds.begin_round()
        header_bytes = rounds.download_header()
        with timer:
            header = HeaderInfo.decode(header_bytes)
            source_node = self.network.node(source)
            target_node = self.network.node(target)
            source_region = header.region_of_point(source_node.x, source_node.y)
            target_region = header.region_of_point(target_node.x, target_node.y)

        # round 2: one look-up page
        rounds.begin_round()
        lookup_page, slot = header.lookup_page_for(source_region, target_region)
        lookup_bytes = rounds.fetch(LOOKUP_FILE, lookup_page)
        with timer:
            index_start_page = read_lookup_entry(lookup_bytes, slot)

        # round 3: the fixed window of network-index pages
        rounds.begin_round()
        index_pages = header.index_pages_starting_at(index_start_page)
        fetched_index = rounds.fetch_many(INDEX_FILE, index_pages)
        rounds.pad(INDEX_FILE, header.index_fetch_pages)
        with timer:
            entry = decode_index_entry(fetched_index, (source_region, target_region))
            if entry is None or entry.regions is None:
                raise SchemeError("missing region-set entry for queried pair")
            regions_to_fetch = sorted(set(entry.regions) | {source_region, target_region})

        # round 4: region data pages, padded to m + 2
        rounds.begin_round()
        payloads = []
        for region_id in regions_to_fetch:
            pages = rounds.fetch_many(DATA_FILE, header.data_pages_for_region(region_id))
            payloads.append(pages)
        rounds.pad(DATA_FILE, header.data_round_pages)

        def solve() -> QueryResult:
            with timer:
                subgraph = assembly.assemble_region_csr(payloads)
                path = csr_shortest_path(subgraph, source, target)
            return self.finish_query(path, trace, timer.seconds)

        def finish(path, solve_seconds: float) -> QueryResult:
            return self.finish_query(path, trace, timer.seconds + solve_seconds)

        remote = RemoteSolve(
            assembly.solve_region_query,
            (payloads, source, target),
            assembly.region_cache_key(payloads),
        )
        return PreparedQuery(solve, remote=remote, finish=finish)
