"""Query-processing schemes: the paper's CI, PI, HY, PI* and the LM/AF/OBF baselines."""

from .approximate import ApproximatePassageIndexScheme, measure_cost_deviation
from .arcflag_scheme import ArcFlagScheme
from .base import (
    QueryResult,
    RoundManager,
    Scheme,
    response_time_from_trace,
    verify_plan_conformance,
)
from .ci import ConciseIndexScheme
from .clustered import ClusteredPassageIndexScheme
from .files import (
    COMBINED_FILE,
    DATA_FILE,
    HeaderInfo,
    INDEX_FILE,
    LOOKUP_FILE,
    build_lookup_file,
    build_region_data_file,
    decode_region_pages,
    read_lookup_entry,
)
from .hybrid import HybridScheme
from .index_entries import (
    IndexEntry,
    IndexFileBuilder,
    decode_index_entry,
    resolve_page_image,
    resolved_entries_at,
)
from .landmark_scheme import LandmarkScheme, generate_plan_pairs
from .obfuscation import ObfuscationResult, ObfuscationScheme
from .pi import PassageIndexScheme
from .plan import QueryPlan, RoundSpec

__all__ = [
    "COMBINED_FILE",
    "DATA_FILE",
    "INDEX_FILE",
    "LOOKUP_FILE",
    "ApproximatePassageIndexScheme",
    "ArcFlagScheme",
    "ClusteredPassageIndexScheme",
    "ConciseIndexScheme",
    "HeaderInfo",
    "HybridScheme",
    "IndexEntry",
    "IndexFileBuilder",
    "LandmarkScheme",
    "ObfuscationResult",
    "ObfuscationScheme",
    "PassageIndexScheme",
    "QueryPlan",
    "QueryResult",
    "RoundManager",
    "RoundSpec",
    "Scheme",
    "build_lookup_file",
    "build_region_data_file",
    "decode_index_entry",
    "decode_region_pages",
    "generate_plan_pairs",
    "measure_cost_deviation",
    "read_lookup_entry",
    "resolve_page_image",
    "resolved_entries_at",
    "response_time_from_trace",
    "verify_plan_conformance",
]
