"""Query plans (Section 3.1, Security Objective).

A query plan fixes, for every query, the number of processing rounds, the
files touched in each round, their order, and the exact number of pages
retrieved from each file.  Every query must follow the plan — padding its
requests with dummy retrievals when it needs fewer pages — which is what makes
any two queries indistinguishable to the LBS (Theorem 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from ..pir import AdversaryEvent, AdversaryView
from ..storage import RecordReader, RecordWriter


@dataclass(frozen=True)
class RoundSpec:
    """One round of the plan: optional header download followed by PIR fetches."""

    #: Ordered ``(file name, number of pages)`` fetched through the PIR interface.
    fetches: Tuple[Tuple[str, int], ...] = ()
    #: Whether the round begins with the full (non-PIR) header download.
    includes_header: bool = False

    def pages_for(self, file_name: str) -> int:
        return sum(count for name, count in self.fetches if name == file_name)

    @property
    def total_pages(self) -> int:
        return sum(count for _, count in self.fetches)


@dataclass(frozen=True)
class QueryPlan:
    """The complete, publicly known query plan of a scheme."""

    rounds: Tuple[RoundSpec, ...]

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    def total_pir_pages(self) -> int:
        return sum(round_spec.total_pages for round_spec in self.rounds)

    def pages_per_file(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for round_spec in self.rounds:
            for file_name, count in round_spec.fetches:
                totals[file_name] = totals.get(file_name, 0) + count
        return totals

    def expected_adversary_view(self) -> AdversaryView:
        """The adversary-visible event sequence every conforming query produces."""
        events: List[AdversaryEvent] = []
        for round_number, round_spec in enumerate(self.rounds, start=1):
            if round_spec.includes_header:
                events.append(AdversaryEvent(round_number, "header", ""))
            for file_name, count in round_spec.fetches:
                events.extend(
                    AdversaryEvent(round_number, "pir", file_name) for _ in range(count)
                )
        return AdversaryView(tuple(events))

    # ------------------------------------------------------------------ #
    # serialization (the plan is part of the public header file)
    # ------------------------------------------------------------------ #
    def encode(self) -> bytes:
        writer = RecordWriter()
        writer.varint(len(self.rounds))
        for round_spec in self.rounds:
            writer.varint(1 if round_spec.includes_header else 0)
            writer.varint(len(round_spec.fetches))
            for file_name, count in round_spec.fetches:
                writer.string(file_name)
                writer.varint(count)
        return writer.getvalue()

    @staticmethod
    def decode(reader: RecordReader) -> "QueryPlan":
        num_rounds = reader.varint()
        rounds: List[RoundSpec] = []
        for _ in range(num_rounds):
            includes_header = bool(reader.varint())
            num_fetches = reader.varint()
            fetches = tuple(
                (reader.string(), reader.varint()) for _ in range(num_fetches)
            )
            rounds.append(RoundSpec(fetches=fetches, includes_header=includes_header))
        return QueryPlan(tuple(rounds))

    @staticmethod
    def from_rounds(rounds: Iterable[RoundSpec]) -> "QueryPlan":
        return QueryPlan(tuple(rounds))
