"""Response-time decomposition.

The paper reports, per query, (i) the PIR time for fetching pages through the
secure co-processor, (ii) the communication time over the 3G link, and (iii)
the client-side computation time (Table 3).  This module converts access
traces into those three components using the :class:`~repro.costmodel.spec.SystemSpec`.

The PIR page-retrieval time follows the hardware-aided protocol of Williams &
Sion [36]: amortized ``O(log² N)`` page operations per retrieval (reads,
writes, encryptions and decryptions during pyramid reshuffling) plus a
logarithmic number of disk seeks.  The constants are calibrated so that
retrieving a page from a 1 GByte file costs on the order of one second, as
reported in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from .spec import DEFAULT_SPEC, SystemSpec


def pir_page_retrieval_time(num_pages_in_file: int, spec: SystemSpec = DEFAULT_SPEC) -> float:
    """Amortized time (seconds) to obliviously retrieve one page from a file.

    ``num_pages_in_file`` is the total number of pages N in the accessed file;
    the cost grows with ``log²(N)`` as in [36].
    """
    if num_pages_in_file <= 0:
        raise ValueError("a PIR-accessible file must contain at least one page")
    levels = max(1.0, math.log2(num_pages_in_file))
    page = spec.page_size
    # One logical page operation moves the page through the disk, the SCP I/O
    # path, and the SCP crypto engine (once in each direction).
    page_op_s = page * (
        2.0 / spec.disk_rate_bps
        + 2.0 / spec.scp_io_rate_bps
        + 2.0 / spec.scp_crypto_rate_bps
    )
    compute_s = spec.oram_overhead_factor * (levels ** 2) * page_op_s
    seek_s = levels * spec.disk_seek_s
    return compute_s + seek_s


def plain_page_read_time(spec: SystemSpec = DEFAULT_SPEC) -> float:
    """Time for a plain (unsecured) random disk page read, for comparison."""
    return spec.disk_seek_s + spec.page_size / spec.disk_rate_bps


def communication_time(bytes_transferred: int, rounds: int, spec: SystemSpec = DEFAULT_SPEC) -> float:
    """Time to ship ``bytes_transferred`` to the client over ``rounds`` exchanges."""
    if bytes_transferred < 0 or rounds < 0:
        raise ValueError("bytes and rounds must be non-negative")
    return rounds * spec.round_trip_s + bytes_transferred / spec.bandwidth_bps


@dataclass
class ResponseTime:
    """The response-time decomposition reported in Table 3."""

    pir_s: float = 0.0
    communication_s: float = 0.0
    client_s: float = 0.0
    server_s: float = 0.0  # only non-zero for the plaintext OBF baseline

    @property
    def total_s(self) -> float:
        return self.pir_s + self.communication_s + self.client_s + self.server_s

    def __add__(self, other: "ResponseTime") -> "ResponseTime":
        return ResponseTime(
            self.pir_s + other.pir_s,
            self.communication_s + other.communication_s,
            self.client_s + other.client_s,
            self.server_s + other.server_s,
        )

    def scaled(self, factor: float) -> "ResponseTime":
        return ResponseTime(
            self.pir_s * factor,
            self.communication_s * factor,
            self.client_s * factor,
            self.server_s * factor,
        )


@dataclass
class CostModel:
    """Accumulates the response time of one query from its observable events."""

    spec: SystemSpec = field(default_factory=lambda: DEFAULT_SPEC)

    def header_download(self, header_bytes: int) -> ResponseTime:
        """Round 1: the header is downloaded in full, without the PIR interface."""
        return ResponseTime(
            pir_s=0.0,
            communication_s=communication_time(header_bytes, rounds=1, spec=self.spec),
        )

    def pir_round(self, pages_per_file: Dict[str, int], file_sizes: Dict[str, int]) -> ResponseTime:
        """One processing round that fetches pages from PIR-accessible files.

        ``pages_per_file`` maps file name → number of pages retrieved this
        round; ``file_sizes`` maps file name → total number of pages in that
        file (which determines the per-page PIR cost).
        """
        pir_s = 0.0
        transferred = 0
        for file_name, count in pages_per_file.items():
            if count < 0:
                raise ValueError("page counts must be non-negative")
            per_page = pir_page_retrieval_time(file_sizes[file_name], self.spec)
            pir_s += count * per_page
            transferred += count * self.spec.page_size
        comm_s = communication_time(transferred, rounds=1, spec=self.spec)
        return ResponseTime(pir_s=pir_s, communication_s=comm_s)

    def plaintext_server_work(self, settled_nodes: int) -> ResponseTime:
        """Server CPU time for plaintext processing (OBF baseline only)."""
        return ResponseTime(server_s=settled_nodes * self.spec.server_dijkstra_s_per_node)

    def plaintext_transfer(self, payload_bytes: int, rounds: int = 1) -> ResponseTime:
        """Plain data transfer to the client (OBF result paths, for instance)."""
        return ResponseTime(
            communication_s=communication_time(payload_bytes, rounds, spec=self.spec)
        )
