"""Cost model: Table 2 system specification and response-time decomposition."""

from .spec import DEFAULT_SPEC, SystemSpec
from .timing import (
    CostModel,
    ResponseTime,
    communication_time,
    pir_page_retrieval_time,
    plain_page_read_time,
)

__all__ = [
    "DEFAULT_SPEC",
    "CostModel",
    "ResponseTime",
    "SystemSpec",
    "communication_time",
    "pir_page_retrieval_time",
    "plain_page_read_time",
]
