"""System specification (Table 2 of the paper).

The paper simulates the IBM 4764 PCI-X cryptographic co-processor and a
commodity hard disk; all response-time figures are derived from the constants
below.  This module reproduces those constants and exposes them as a frozen
dataclass so experiments can tweak individual knobs (e.g. a faster link) while
keeping the defaults faithful to the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class SystemSpec:
    """Hardware and network constants used by the cost model.

    Default values are Table 2 plus the SCP characteristics stated in
    Section 3.2 (32 MByte SCP RAM, 2.5 GByte maximum file size, memory factor
    ``c = 10`` for the Williams & Sion protocol).
    """

    #: Disk page size in bytes.
    page_size: int = 4096
    #: Disk seek time in seconds (11 ms).
    disk_seek_s: float = 0.011
    #: Disk sequential read/write rate in bytes per second (125 MByte/s).
    disk_rate_bps: float = 125 * 1024 * 1024
    #: SCP read/write rate in bytes per second (80 MByte/s).
    scp_io_rate_bps: float = 80 * 1024 * 1024
    #: SCP encryption/decryption rate in bytes per second (10 MByte/s).
    scp_crypto_rate_bps: float = 10 * 1024 * 1024
    #: Client-LBS communication bandwidth in bytes per second (48 KByte/s, 3G).
    bandwidth_bps: float = 48 * 1024
    #: Communication round-trip time in seconds (700 ms).
    round_trip_s: float = 0.7
    #: SCP memory in bytes (32 MByte on the IBM 4764).
    scp_memory_bytes: int = 32 * 1024 * 1024
    #: Memory requirement factor of the PIR protocol: it needs ``c · sqrt(N)`` memory.
    scp_memory_factor: float = 10.0
    #: Maximum file size supported by the PIR interface (2.5 GByte).
    max_file_bytes: int = int(2.5 * 1024 * 1024 * 1024)
    #: Calibration factor accounting for the ORAM reshuffling overhead of [36].
    oram_overhead_factor: float = 2.0
    #: Estimated server CPU time per settled node for plain (unsecured) Dijkstra,
    #: used only by the OBF baseline whose server operates on plaintext data.
    server_dijkstra_s_per_node: float = 2.0e-6

    def with_overrides(self, **kwargs) -> "SystemSpec":
        """A copy of the spec with selected fields replaced."""
        return replace(self, **kwargs)

    @property
    def max_pages_per_file(self) -> int:
        """Maximum number of pages a PIR-accessible file may contain."""
        return self.max_file_bytes // self.page_size

    def max_supported_pages_by_memory(self) -> int:
        """Largest file (in pages) the SCP memory can support (``c·sqrt(N) ≤ RAM``)."""
        limit = (self.scp_memory_bytes / self.scp_memory_factor) ** 2
        return int(limit // self.page_size)


#: The default specification used throughout the evaluation (Table 2).
DEFAULT_SPEC = SystemSpec()
